"""Program-level metrics over Multiscalar executables.

Summarises the static structure of a task flow graph: arity and fan-out
histograms, exit-type mix, header overhead, and static reachability from
the entry task. Used by the workload explorer and available to users
evaluating their own tasking strategies.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.isa.program import MultiscalarProgram


@dataclass(frozen=True)
class ProgramMetrics:
    """Static structure summary of one executable.

    Attributes:
        task_count: Static tasks in the executable.
        arity_histogram: {n_exits: task count}.
        exit_type_counts: {type name: static exit count}.
        mean_instructions_per_task: Average nominal task body size.
        fanout_histogram: {n_static_successors: task count} — how many
            distinct header targets each task declares.
        statically_reachable: Tasks reachable from the entry following
            header (static) arcs only; returns and indirect arcs are
            invisible statically, so this is a lower bound on the hot set.
        header_bytes: Total encoded header overhead.
    """

    task_count: int
    arity_histogram: dict[int, int]
    exit_type_counts: dict[str, int]
    mean_instructions_per_task: float
    fanout_histogram: dict[int, int]
    statically_reachable: int
    header_bytes: int

    @property
    def mean_exits_per_task(self) -> float:
        """Average header exits per task."""
        total = sum(k * v for k, v in self.arity_histogram.items())
        return total / self.task_count if self.task_count else 0.0

    @property
    def static_reach_fraction(self) -> float:
        """Share of tasks reachable via static arcs alone."""
        if not self.task_count:
            return 0.0
        return self.statically_reachable / self.task_count


def compute_program_metrics(program: MultiscalarProgram) -> ProgramMetrics:
    """Measure the static structure of ``program``."""
    arity: Counter = Counter()
    types: Counter = Counter()
    fanout: Counter = Counter()
    total_instructions = 0
    for task in program.tfg:
        arity[task.n_exits] += 1
        total_instructions += task.instruction_count
        for task_exit in task.header.exits:
            types[str(task_exit.cf_type)] += 1
        fanout[len(set(task.static_targets()))] += 1
    task_count = program.static_task_count

    reachable: set[int] = set()
    stack = [program.entry]
    while stack:
        address = stack.pop()
        if address in reachable:
            continue
        reachable.add(address)
        for successor in program.tfg.static_successors(address):
            if successor not in reachable:
                stack.append(successor)
        # Call exits also make their return point statically known.
        for task_exit in program.task(address).header.exits:
            return_address = task_exit.return_address
            if (
                return_address is not None
                and return_address in program
                and return_address not in reachable
            ):
                stack.append(return_address)

    return ProgramMetrics(
        task_count=task_count,
        arity_histogram=dict(sorted(arity.items())),
        exit_type_counts=dict(sorted(types.items())),
        mean_instructions_per_task=(
            total_instructions / task_count if task_count else 0.0
        ),
        fanout_histogram=dict(sorted(fanout.items())),
        statically_reachable=len(reachable),
        header_bytes=program.total_header_bits() // 8,
    )


def format_metrics(metrics: ProgramMetrics) -> str:
    """Render metrics as a short report."""
    type_mix = ", ".join(
        f"{name} {count}" for name, count in metrics.exit_type_counts.items()
    )
    return "\n".join(
        [
            f"tasks: {metrics.task_count} "
            f"(mean {metrics.mean_exits_per_task:.2f} exits, "
            f"{metrics.mean_instructions_per_task:.1f} insns)",
            f"arity: {metrics.arity_histogram}",
            f"fan-out: {metrics.fanout_histogram}",
            f"exit types: {type_mix}",
            f"statically reachable: {metrics.statically_reachable} "
            f"({metrics.static_reach_fraction:.0%})",
            f"header overhead: {metrics.header_bytes} bytes",
        ]
    )
