"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class EncodingError(ReproError):
    """A value cannot be packed into, or unpacked from, its binary format."""


class TaskFormatError(ReproError):
    """A task, header, or exit violates the Multiscalar executable format."""


class CFGError(ReproError):
    """A control-flow graph is malformed (dangling edges, missing entry...)."""


class PartitionError(ReproError):
    """The task partitioner cannot produce a legal tasking of a CFG."""


class TraceError(ReproError):
    """A task trace is malformed or inconsistent with its program."""


class PredictorConfigError(ReproError):
    """A predictor was configured with invalid parameters."""


class SimulationError(ReproError):
    """A simulator reached an inconsistent state."""


class WorkloadError(ReproError):
    """A synthetic workload profile is invalid or unknown."""


class ExperimentError(ReproError):
    """An experiment driver was invoked with bad arguments."""


class CellExecutionError(ExperimentError):
    """A grid cell failed to execute, after any configured retries.

    Carries ``cell_label`` so harnesses can report *which* cell of a
    sweep failed (including cells whose worker process died).
    """

    def __init__(self, message: str, cell_label: str = "?") -> None:
        super().__init__(message)
        self.cell_label = cell_label
