"""Setup shim.

The offline environment has setuptools but not the ``wheel`` package, so
PEP 660 editable installs (which need ``bdist_wheel``) fail. Keeping a
``setup.py`` and omitting the ``[build-system]`` table from pyproject.toml
lets ``pip install -e .`` fall back to the legacy ``setup.py develop`` path,
which works without network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Control Flow Speculation in Multiscalar "
        "Processors' (Jacobson et al., HPCA 1997)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
