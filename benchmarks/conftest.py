"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures in quick
mode (40k-task traces, sparse sweeps) so the whole suite completes in
minutes. Run with::

    pytest benchmarks/ --benchmark-only

Use ``python -m repro.evalx <id>`` for full-length regenerations.
"""

import os

# Benchmarks must be reproducible and self-contained: keep the on-disk
# trace cache out of the picture unless the user opted in.
os.environ.setdefault("REPRO_CACHE_DIR", "off")
