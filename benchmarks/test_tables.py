"""Benchmarks regenerating the paper's tables (2, 3 and 4)."""

from repro.evalx.registry import run_experiment


def _once(benchmark, experiment_id):
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"quick": True},
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == experiment_id
    return result


def test_table2_benchmark_characteristics(benchmark):
    """Table 2: static/dynamic/distinct task counts for all benchmarks."""
    result = _once(benchmark, "table2")
    assert set(result.data) == {
        "gcc", "compress", "espresso", "sc", "xlisp",
    }


def test_table3_cttb_only_vs_exit_predictor(benchmark):
    """Table 3: CTTB-only vs exit predictor + RAS + CTTB miss rates."""
    result = _once(benchmark, "table3")
    for row in result.data.values():
        assert 0.0 <= row["cttb_only_miss"] <= 1.0


def test_table4_ipc(benchmark):
    """Table 4: IPC per prediction scheme from the timing simulator."""
    result = _once(benchmark, "table4")
    for ipcs in result.data.values():
        assert ipcs["Perfect"] >= ipcs["Simple"] - 1e-9
