"""Benchmarks for the beyond-paper extension studies."""

from repro.evalx.registry import run_experiment


def _once(benchmark, experiment_id):
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"quick": True},
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == experiment_id
    return result


def test_ext_repair_policies(benchmark):
    """History repair policies under wrong-path pollution (§3.1 relaxed)."""
    result = _once(benchmark, "ext_repair")
    series = result.data["series"]
    benchmark.extra_info["gcc_perfect"] = series["speculative/perfect"][0]
    benchmark.extra_info["gcc_none"] = series["speculative/none"][0]


def test_ext_ras_depth_sweep(benchmark):
    """Return-address-stack depth sweep (§4.2's 'reasonably deep')."""
    result = _once(benchmark, "ext_ras")
    assert min(result.data["depths"]) >= 1


def test_ext_cttb_size_sweep(benchmark):
    """CTTB storage sweep for indirect targets (§6.4.1)."""
    result = _once(benchmark, "ext_cttb")
    assert len(result.data["widths"]) >= 3


def test_ext_hybrid_tournament(benchmark):
    """Tournament PATH+PER predictor vs its components."""
    result = _once(benchmark, "ext_hybrid")
    series = result.data["series"]
    benchmark.extra_info["sc_path"] = series["PATH"][3]
    benchmark.extra_info["sc_hybrid"] = series["tournament"][3]


def test_ext_confidence_estimation(benchmark):
    """Resetting-counter confidence estimator quality metrics."""
    result = _once(benchmark, "ext_confidence")
    for row in result.data.values():
        assert row["high_accuracy"] >= 0.8


def test_ext_tasksize_granularity(benchmark):
    """Task granularity vs predictability (the §3.2 compiler dependence)."""
    result = _once(benchmark, "ext_tasksize")
    for by_cap in result.data.values():
        caps = sorted(by_cap)
        assert by_cap[caps[0]]["static_tasks"] >= by_cap[caps[-1]][
            "static_tasks"
        ]


def test_ext_dominance_real_path_vs_ideal(benchmark):
    """§6.3: real 8KB PATH vs ideal GLOBAL/PER at depth 7."""
    result = _once(benchmark, "ext_dominance")
    wins = sum(
        1
        for row in result.data.values()
        if row["real_path"] <= row["ideal_global"] + 0.002
    )
    benchmark.extra_info["beats_ideal_global_on"] = wins
    assert wins >= 3


def test_ext_static_hints(benchmark):
    """Profile-guided static hints vs dynamic prediction."""
    result = _once(benchmark, "ext_static")
    for row in result.data.values():
        assert row["path"] <= row["static"] + 0.005


def test_ext_seed_robustness(benchmark):
    """Headline orderings re-measured under alternative generator seeds."""
    result = _once(benchmark, "ext_seeds")
    holds = sum(
        1
        for by_seed in result.data.values()
        for point in by_seed.values()
        if point["path"] <= point["global"] + 0.003
    )
    total = sum(len(by_seed) for by_seed in result.data.values())
    benchmark.extra_info["path_beats_global"] = f"{holds}/{total}"
    assert holds >= int(0.7 * total)


def test_ext_gating_speculation_control(benchmark):
    """Confidence-gated speculation: the recovery-cost crossover."""
    result = _once(benchmark, "ext_gating")
    gcc = result.data["gcc"]
    benchmark.extra_info["gcc_cheap_ungated"] = gcc["penalty3"]["ungated"]
    benchmark.extra_info["gcc_costly_ungated"] = gcc["penalty40"]["ungated"]
