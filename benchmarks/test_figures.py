"""Benchmarks regenerating the paper's figures (3, 4, 6, 7, 8, 10, 11, 12)."""

from repro.evalx.registry import run_experiment


def _once(benchmark, experiment_id):
    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"quick": True},
        rounds=1,
        iterations=1,
    )
    assert result.experiment_id == experiment_id
    return result


def test_figure3_exits_per_task(benchmark):
    """Figure 3: distribution of exits per task, static and dynamic."""
    result = _once(benchmark, "figure3")
    assert "average" in result.data


def test_figure4_exit_types(benchmark):
    """Figure 4: exit-type mix, static and dynamic."""
    result = _once(benchmark, "figure4")
    assert result.data["gcc"]["dynamic"]["branch"] > 0.2


def test_figure6_automata(benchmark):
    """Figure 6: seven prediction automata on gcc."""
    result = _once(benchmark, "figure6")
    assert len(result.data["series"]) == 7


def test_figure7_ideal_histories(benchmark):
    """Figure 7: ideal GLOBAL/PATH/PER per benchmark."""
    result = _once(benchmark, "figure7")
    assert set(result.data["gcc"]) == {"global", "path", "per"}


def test_figure8_ideal_cttb(benchmark):
    """Figure 8: ideal CTTB on gcc and xlisp, plus infinite-TTB baseline."""
    result = _once(benchmark, "figure8")
    assert result.data["gcc"]["indirect_exits"] > 0


def test_figure10_real_vs_ideal_exit(benchmark):
    """Figure 10: real 8KB path predictors vs ideal."""
    result = _once(benchmark, "figure10")
    assert len(result.data["configs"]) >= 4


def test_figure11_states_touched(benchmark):
    """Figure 11: PHT states touched, ideal vs real."""
    result = _once(benchmark, "figure11")
    assert result.data["gcc"]["ideal"][-1] > 0


def test_figure12_real_vs_ideal_cttb(benchmark):
    """Figure 12: real 8KB CTTB vs ideal on gcc and xlisp."""
    result = _once(benchmark, "figure12")
    assert set(result.data) >= {"gcc", "xlisp"}
