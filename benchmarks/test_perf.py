"""Performance checks for the vectorized kernels and the --jobs engine.

Each test times a batched kernel against the step-by-step loop (or a
parallel experiment run against the serial one) on a fixed workload and
emits a machine-readable line::

    BENCH {"name": ..., "serial_s": ..., "fast_s": ..., "speedup": ...}

so CI logs and tooling can track the numbers over time. Correctness is
asserted (identical results both ways); speed is reported, not gated —
wall-clock ratios are hardware-dependent, and on a single-CPU box the
``--jobs`` fan-out cannot win.
"""

from __future__ import annotations

import json
import time

from repro.evalx.registry import run_experiment
from repro.predictors.ideal import (
    IdealGlobalPredictor,
    IdealPathPredictor,
    IdealPerTaskPredictor,
)
from repro.predictors.ttb import IdealCorrelatedTargetBuffer
from repro.sim.functional import (
    simulate_exit_prediction,
    simulate_indirect_target_prediction,
)
from repro.synth.workloads import load_workload

_TASKS = 100_000


def _report(name: str, serial_s: float, fast_s: float) -> None:
    print(
        "BENCH "
        + json.dumps(
            {
                "name": name,
                "serial_s": round(serial_s, 4),
                "fast_s": round(fast_s, 4),
                "speedup": round(serial_s / fast_s, 2) if fast_s else None,
            }
        )
    )


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_exit_kernel_speedup():
    """Batched ideal exit predictors vs the generic loop, all schemes."""
    workload = load_workload("gcc", n_tasks=_TASKS)
    total_slow = total_fast = 0.0
    for cls in (
        IdealGlobalPredictor, IdealPerTaskPredictor, IdealPathPredictor,
    ):
        for depth in (0, 4, 7):
            looped, slow = _time(
                lambda: simulate_exit_prediction(
                    workload, cls(depth), vectorize=False
                )
            )
            batched, fast = _time(
                lambda: simulate_exit_prediction(
                    workload, cls(depth), vectorize=True
                )
            )
            assert batched == looped
            total_slow += slow
            total_fast += fast
    _report("exit_kernel[gcc-100k]", total_slow, total_fast)


def test_target_kernel_speedup():
    """Batched ideal CTTB vs the generic loop."""
    workload = load_workload("gcc", n_tasks=_TASKS)
    total_slow = total_fast = 0.0
    for depth in (0, 3, 7):
        looped, slow = _time(
            lambda: simulate_indirect_target_prediction(
                workload, IdealCorrelatedTargetBuffer(depth),
                vectorize=False,
            )
        )
        batched, fast = _time(
            lambda: simulate_indirect_target_prediction(
                workload, IdealCorrelatedTargetBuffer(depth),
                vectorize=True,
            )
        )
        assert batched == looped
        total_slow += slow
        total_fast += fast
    _report("target_kernel[gcc-100k]", total_slow, total_fast)


def test_jobs_speedup():
    """figure7 fanned over workers vs serial — identical data either way."""
    kwargs = dict(
        n_tasks=40_000, quick=True, benchmarks=("gcc", "xlisp")
    )
    # Warm the trace caches so both timings measure simulation only.
    for name in kwargs["benchmarks"]:
        load_workload(name, n_tasks=kwargs["n_tasks"])
    serial, serial_s = _time(
        lambda: run_experiment("figure7", **kwargs)
    )
    fanned, fanned_s = _time(
        lambda: run_experiment("figure7", jobs=0, **kwargs)
    )
    assert fanned.data == serial.data
    _report("figure7_jobs[40k]", serial_s, fanned_s)
