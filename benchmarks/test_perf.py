"""Performance checks for the vectorized kernels and the --jobs engine.

Each test times a batched kernel against the step-by-step loop (or a
parallel experiment run against the serial one) on a fixed workload and
emits a machine-readable line::

    BENCH {"name": ..., "serial_s": ..., "fast_s": ..., "speedup": ...}

so CI logs and tooling can track the numbers over time. Correctness is
asserted (identical results both ways); speed is reported, not gated —
wall-clock ratios are hardware-dependent, and on a single-CPU box the
``--jobs`` fan-out cannot win.
"""

from __future__ import annotations

import json
import time

from repro.evalx.experiments.common import BENCHMARKS
from repro.evalx.experiments.table4 import SCHEMES, _make_predictor
from repro.evalx.registry import run_experiment
from repro.predictors.folding import DolcSpec
from repro.predictors.ideal import (
    IdealGlobalPredictor,
    IdealPathPredictor,
    IdealPerTaskPredictor,
)
from repro.predictors.speculative import SpeculativePathPredictor
from repro.predictors.ttb import IdealCorrelatedTargetBuffer
from repro.sim.functional import (
    simulate_exit_prediction,
    simulate_indirect_target_prediction,
)
from repro.sim.relaxed import simulate_speculative_exit_prediction
from repro.sim.timing import TimingConfig, simulate_timing
from repro.sim.timing.detailed import simulate_timing_detailed
from repro.synth.workloads import load_workload

_TASKS = 100_000


def _report(name: str, serial_s: float, fast_s: float) -> None:
    print(
        "BENCH "
        + json.dumps(
            {
                "name": name,
                "serial_s": round(serial_s, 4),
                "fast_s": round(fast_s, 4),
                "speedup": round(serial_s / fast_s, 2) if fast_s else None,
            }
        )
    )


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_exit_kernel_speedup():
    """Batched ideal exit predictors vs the generic loop, all schemes."""
    workload = load_workload("gcc", n_tasks=_TASKS)
    total_slow = total_fast = 0.0
    for cls in (
        IdealGlobalPredictor, IdealPerTaskPredictor, IdealPathPredictor,
    ):
        for depth in (0, 4, 7):
            looped, slow = _time(
                lambda: simulate_exit_prediction(
                    workload, cls(depth), vectorize=False
                )
            )
            batched, fast = _time(
                lambda: simulate_exit_prediction(
                    workload, cls(depth), vectorize=True
                )
            )
            assert batched == looped
            total_slow += slow
            total_fast += fast
    _report("exit_kernel[gcc-100k]", total_slow, total_fast)


def test_target_kernel_speedup():
    """Batched ideal CTTB vs the generic loop."""
    workload = load_workload("gcc", n_tasks=_TASKS)
    total_slow = total_fast = 0.0
    for depth in (0, 3, 7):
        looped, slow = _time(
            lambda: simulate_indirect_target_prediction(
                workload, IdealCorrelatedTargetBuffer(depth),
                vectorize=False,
            )
        )
        batched, fast = _time(
            lambda: simulate_indirect_target_prediction(
                workload, IdealCorrelatedTargetBuffer(depth),
                vectorize=True,
            )
        )
        assert batched == looped
        total_slow += slow
        total_fast += fast
    _report("target_kernel[gcc-100k]", total_slow, total_fast)


def test_table4_sweep_speedup():
    """Full Table 4 grid — realistic predictors through the timing model.

    5 benchmarks x 5 schemes (Simple/GLOBAL/PER/PATH/Perfect), scalar
    reference loop vs the batched kernels. Two vectorized timings are
    reported: *cold* pays the one-time per-trace derived-column builds
    (header tables, history columns, timing cycle columns), *warm* shows
    the steady-state cost once the memo caches hold them — the number a
    long sweep with repeated traces actually sees.
    """
    def sweep(vectorize: bool) -> dict:
        results = {}
        for name in BENCHMARKS:
            workload = load_workload(name, n_tasks=_TASKS)
            for scheme in SCHEMES:
                predictor = _make_predictor(scheme, workload)
                results[(name, scheme)] = simulate_timing(
                    workload, predictor, vectorize=vectorize
                )
        return results

    serial, serial_s = _time(lambda: sweep(False))
    cold, cold_s = _time(lambda: sweep(True))
    warm, warm_s = _time(lambda: sweep(True))
    assert cold == serial
    assert warm == serial
    _report("table4_sweep_cold[100k]", serial_s, cold_s)
    _report("table4_sweep_warm[100k]", serial_s, warm_s)


def test_speculative_repair_speedup():
    """Speculative-history path predictor, perfect repair, batched replay.

    The batched path evaluates the run as a PHT replay over the
    committed stream plus a level-synchronous wrong-path walk; the
    stepped loop mutates predictor state task by task. A fresh predictor
    is built per run — the stepped loop trains it in place.
    """
    workload = load_workload("gcc", n_tasks=_TASKS)
    spec = DolcSpec.parse("7-5-7-8(3)")
    total_slow = total_fast = 0.0
    for depth in (0, 4):
        looped, slow = _time(
            lambda: simulate_speculative_exit_prediction(
                workload, SpeculativePathPredictor(spec),
                wrong_path_depth=depth, vectorize=False,
            )
        )
        batched, fast = _time(
            lambda: simulate_speculative_exit_prediction(
                workload, SpeculativePathPredictor(spec),
                wrong_path_depth=depth, vectorize=True,
            )
        )
        assert batched == looped
        total_slow += slow
        total_fast += fast
    _report("speculative_perfect[gcc-100k]", total_slow, total_fast)


def test_detailed_timing_event_compression():
    """Cycle-stepped model with event-compressed advance vs full stepping.

    Long tasks (high startup, narrow issue) leave many event-free cycles
    between dispatches, which the compressed advance jumps in one
    accounting step. Both modes run identical phase code at event
    cycles, so the results compare equal field for field.
    """
    workload = load_workload("gcc", n_tasks=8_000)
    config = TimingConfig(task_startup_cycles=16, issue_width=2)
    predictor_a = _make_predictor("PATH", workload)
    predictor_b = _make_predictor("PATH", workload)
    stepped, slow = _time(
        lambda: simulate_timing_detailed(
            workload, predictor_a, config=config, vectorize=False
        )
    )
    compressed, fast = _time(
        lambda: simulate_timing_detailed(
            workload, predictor_b, config=config, vectorize=True
        )
    )
    assert compressed == stepped
    _report("detailed_event_skip[gcc-8k]", slow, fast)


def test_jobs_speedup():
    """figure7 fanned over workers vs serial — identical data either way."""
    kwargs = dict(
        n_tasks=40_000, quick=True, benchmarks=("gcc", "xlisp")
    )
    # Warm the trace caches so both timings measure simulation only.
    for name in kwargs["benchmarks"]:
        load_workload(name, n_tasks=kwargs["n_tasks"])
    serial, serial_s = _time(
        lambda: run_experiment("figure7", **kwargs)
    )
    fanned, fanned_s = _time(
        lambda: run_experiment("figure7", jobs=0, **kwargs)
    )
    assert fanned.data == serial.data
    _report("figure7_jobs[40k]", serial_s, fanned_s)
