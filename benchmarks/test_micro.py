"""Micro-benchmarks of the hot components (throughput measurements)."""

from repro.predictors.automata import LastExitHysteresis
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.synth.executor import TraceExecutor
from repro.synth.workloads import build_program, load_workload


def test_dolc_index_throughput(benchmark):
    """D-O-L-C index computation rate (the predictor's hot path)."""
    spec = DolcSpec.parse("6-5-8-9(3)")
    path = [0x1000 + 4 * i for i in range(7)]

    def index_many():
        total = 0
        for addr in range(0x2000, 0x2000 + 4 * 256, 4):
            total += spec.index(addr, path)
        return total

    benchmark(index_many)


def test_leh2_automaton_throughput(benchmark):
    """LEH-2 predict/update rate."""
    automaton = LastExitHysteresis(2)

    def train():
        for i in range(1000):
            automaton.predict()
            automaton.update(i & 3)

    benchmark(train)


def test_executor_throughput(benchmark):
    """Trace generation rate (records per second) for compress."""
    compiled = build_program("compress")

    def run():
        return TraceExecutor(compiled, seed=1).run(5000)

    trace = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(trace) == 5000


def test_exit_prediction_throughput(benchmark):
    """Full exit-prediction simulation rate on a 20k-task gcc trace."""
    from repro.sim.functional import simulate_exit_prediction

    workload = load_workload("gcc", n_tasks=20_000)
    predictor_spec = DolcSpec.parse("6-5-8-9(3)")

    def run():
        return simulate_exit_prediction(
            workload, PathExitPredictor(predictor_spec)
        )

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    assert stats.trials == 20_000
