"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each bench runs the two sides of a design decision on the same workload
and records both miss rates in ``extra_info``, so the regenerated output
shows the effect size alongside the timing.
"""

from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.sim.functional import simulate_exit_prediction
from repro.synth.workloads import load_workload

_TASKS = 60_000


def _gcc():
    return load_workload("gcc", n_tasks=_TASKS)


def test_ablation_single_exit_optimisation(benchmark):
    """§6.1: skipping PHT updates for single-exit tasks reduces aliasing."""
    workload = _gcc()
    spec = DolcSpec.parse("6-5-8-9(3)")

    def run():
        optimised = simulate_exit_prediction(
            workload, PathExitPredictor(spec)
        )
        unoptimised = simulate_exit_prediction(
            workload, PathExitPredictor(spec, update_on_single_exit=True)
        )
        return optimised, unoptimised

    optimised, unoptimised = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["miss_with_optimisation"] = optimised.miss_rate
    benchmark.extra_info["miss_without"] = unoptimised.miss_rate
    benchmark.extra_info["states_with"] = optimised.states_touched
    benchmark.extra_info["states_without"] = unoptimised.states_touched
    # Skipping single-exit updates must not cost accuracy.
    assert optimised.miss_rate <= unoptimised.miss_rate + 0.01


def test_ablation_folding_vs_truncation(benchmark):
    """§6.1: folding a wide intermediate index beats truncating to fit.

    Both configurations are depth-6 with a 14-bit final index; the folded
    one concatenates 42 bits and XOR-folds, the truncated one only ever
    captures 14 bits of path information.
    """
    workload = _gcc()
    folded_spec = DolcSpec.parse("6-5-8-9(3)")
    truncated_spec = DolcSpec.parse("6-2-2-2(1)")  # 14 bits, no folding

    def run():
        folded = simulate_exit_prediction(
            workload, PathExitPredictor(folded_spec)
        )
        truncated = simulate_exit_prediction(
            workload, PathExitPredictor(truncated_spec)
        )
        return folded, truncated

    folded, truncated = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["miss_folded"] = folded.miss_rate
    benchmark.extra_info["miss_truncated"] = truncated.miss_rate
    assert folded.miss_rate <= truncated.miss_rate + 0.02


def test_ablation_dolc_taper(benchmark):
    """§6.1: older tasks should contribute fewer bits than recent ones.

    Compares the tapered allocation (O=5 < L=8 < C=9) against a uniform
    one (6 bits from every task) at the same depth and index width.
    """
    workload = _gcc()
    tapered_spec = DolcSpec.parse("6-5-8-9(3)")
    uniform_spec = DolcSpec.parse("6-6-6-6(3)")

    def run():
        tapered = simulate_exit_prediction(
            workload, PathExitPredictor(tapered_spec)
        )
        uniform = simulate_exit_prediction(
            workload, PathExitPredictor(uniform_spec)
        )
        return tapered, uniform

    tapered, uniform = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["miss_tapered"] = tapered.miss_rate
    benchmark.extra_info["miss_uniform"] = uniform.miss_rate
    # The heuristic should not lose; allow noise either way but record it.
    assert abs(tapered.miss_rate - uniform.miss_rate) < 0.05


def test_ablation_dependence_aware_timing(benchmark):
    """Timing model fidelity knob: uniform forwarding stalls vs stalls only
    between register-dependent task pairs (create/use mask intersection)."""
    from repro.predictors.task_predictor import PerfectTaskPredictor
    from repro.sim.timing import TimingConfig, simulate_timing

    workload = load_workload("gcc", n_tasks=_TASKS)

    def run():
        uniform = simulate_timing(
            workload,
            PerfectTaskPredictor(workload.trace),
            config=TimingConfig(dependence_aware=False),
        )
        aware = simulate_timing(
            workload,
            PerfectTaskPredictor(workload.trace),
            config=TimingConfig(dependence_aware=True),
        )
        return uniform, aware

    uniform, aware = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["ipc_uniform"] = uniform.ipc
    benchmark.extra_info["ipc_dependence_aware"] = aware.ipc
    assert aware.ipc >= uniform.ipc
