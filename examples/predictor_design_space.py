"""Design-space exploration: automata x index constructions x benchmarks.

Answers the practical question a microarchitect would ask of this library:
for a fixed 8KB prediction budget, which automaton and which D-O-L-C(F)
index construction give the best task-prediction accuracy on my workload?

Run:  python examples/predictor_design_space.py [benchmark ...]
"""

import sys

from repro import load_workload
from repro.evalx.report import format_percent, render_table
from repro.predictors import DolcSpec, PathExitPredictor
from repro.predictors.automata import make_automaton_factory
from repro.sim import simulate_exit_prediction
from repro.utils.rng import DeterministicRng

AUTOMATA = ("LE", "LEH-1", "LEH-2", "VC2-MRU", "VC3-MRU")
CONFIGS = ("0-0-0-14(1)", "2-4-5-5(1)", "4-5-6-7(2)", "6-5-8-9(3)")
TRACE_LENGTH = 60_000


def explore(benchmark: str) -> None:
    workload = load_workload(benchmark, n_tasks=TRACE_LENGTH)
    rows = []
    best = (1.0, "")
    for config in CONFIGS:
        spec = DolcSpec.parse(config)
        row = [config]
        for automaton in AUTOMATA:
            rng = DeterministicRng(0).fork(f"{config}:{automaton}")
            predictor = PathExitPredictor(
                spec, automaton=make_automaton_factory(automaton, rng)
            )
            stats = simulate_exit_prediction(workload, predictor)
            row.append(format_percent(stats.miss_rate))
            if stats.miss_rate < best[0]:
                best = (stats.miss_rate, f"{config} + {automaton}")
        rows.append(row)
    print(render_table(
        ["DOLC (F)", *AUTOMATA], rows,
        title=f"{benchmark}: exit miss rate, 8KB PHT",
    ))
    print(f"best: {best[1]} at {format_percent(best[0])}\n")


def main() -> None:
    benchmarks = sys.argv[1:] or ["gcc", "xlisp"]
    for benchmark in benchmarks:
        explore(benchmark)


if __name__ == "__main__":
    main()
