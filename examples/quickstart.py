"""Quickstart: predict task exits on a synthetic gcc workload.

Loads the gcc stand-in workload, builds the paper's depth-7 path-based exit
predictor (8KB PHT, LEH-2 automata), measures its accuracy, and compares it
against the naive task-address-indexed baseline.

Run:  python examples/quickstart.py
"""

from repro import load_workload
from repro.predictors import DolcSpec, PathExitPredictor, SimpleExitPredictor
from repro.sim import simulate_exit_prediction


def main() -> None:
    print("Loading the synthetic gcc workload (50k dynamic tasks)...")
    workload = load_workload("gcc", n_tasks=50_000)
    program = workload.compiled.program
    print(
        f"  {program.static_task_count} static tasks, "
        f"{workload.trace.distinct_tasks_seen()} seen, "
        f"{len(workload.trace)} dynamic task executions"
    )

    print("\nPath-based predictor, D-O-L-C(F) = 6-5-8-9(3)  [paper §6.2]")
    path_predictor = PathExitPredictor(DolcSpec.parse("6-5-8-9(3)"))
    path_stats = simulate_exit_prediction(workload, path_predictor)
    print(f"  miss rate: {path_stats.miss_rate:.2%}  "
          f"(multi-exit tasks only: {path_stats.multiway_miss_rate:.2%})")
    print(f"  PHT entries touched: {path_stats.states_touched} "
          f"of {1 << 14}")
    print(f"  storage: {path_stats.storage_bits // 8 // 1024}KB")

    print("\nBaseline: task-address-indexed predictor (no history)")
    simple_stats = simulate_exit_prediction(
        workload, SimpleExitPredictor(index_bits=14)
    )
    print(f"  miss rate: {simple_stats.miss_rate:.2%}")

    improvement = (
        (simple_stats.miss_rate - path_stats.miss_rate)
        / simple_stats.miss_rate
    )
    print(f"\nPath history removes {improvement:.1%} of the misses.")


if __name__ == "__main__":
    main()
