"""Timing study: how task prediction accuracy buys IPC.

Runs the task-granularity Multiscalar timing model (4 processing units,
2-way issue) under four prediction schemes plus the perfect-prediction
bound, then sweeps the number of processing units to show where prediction
accuracy starts limiting scaling — the paper's Table 4 plus an extension.

Run:  python examples/timing_ipc.py
"""

from repro import load_workload
from repro.evalx.experiments.table4 import SCHEMES, _make_predictor
from repro.evalx.report import render_table
from repro.sim import TimingConfig, simulate_timing

TRACE_LENGTH = 60_000


def scheme_comparison(name: str) -> None:
    workload = load_workload(name, n_tasks=TRACE_LENGTH)
    rows = []
    for scheme in SCHEMES:
        predictor = _make_predictor(scheme, workload)
        result = simulate_timing(workload, predictor)
        rows.append([
            scheme,
            f"{result.ipc:.2f}",
            f"{result.task_mispredict_rate:.2%}",
            result.cycles,
        ])
    print(render_table(
        ["scheme", "IPC", "task mispredict rate", "cycles"],
        rows,
        title=f"{name}: 4 units x 2-way, depth-7 history, 16KB PHT",
    ))
    print()


def unit_scaling(name: str) -> None:
    workload = load_workload(name, n_tasks=TRACE_LENGTH)
    rows = []
    for n_units in (1, 2, 4, 8):
        config = TimingConfig(n_units=n_units)
        path = simulate_timing(
            workload, _make_predictor("PATH", workload), config=config
        )
        perfect = simulate_timing(
            workload, _make_predictor("Perfect", workload), config=config
        )
        efficiency = path.ipc / perfect.ipc
        rows.append([
            n_units,
            f"{path.ipc:.2f}",
            f"{perfect.ipc:.2f}",
            f"{efficiency:.1%}",
        ])
    print(render_table(
        ["units", "PATH IPC", "Perfect IPC", "PATH/Perfect"],
        rows,
        title=f"{name}: ring scaling (prediction-limited above ~4 units)",
    ))
    print()


def main() -> None:
    for name in ("gcc", "xlisp"):
        scheme_comparison(name)
    unit_scaling("gcc")


if __name__ == "__main__":
    main()
