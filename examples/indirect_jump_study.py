"""Indirect-jump target prediction: why the CTTB exists.

Reproduces §5.3's motivating comparison on the two indirect-heavy
workloads: a plain task-address-indexed target buffer thrashes on switches
whose target depends on calling context; indexing the same buffer with the
path-history hash (the CTTB) recovers most of the misses. Also shows the
full next-address picture with per-exit-type breakdowns.

Run:  python examples/indirect_jump_study.py
"""

from repro import load_workload
from repro.evalx.report import format_percent, render_table
from repro.predictors import (
    CorrelatedTaskTargetBuffer,
    DolcSpec,
    HeaderTaskPredictor,
    IdealCorrelatedTargetBuffer,
    PathExitPredictor,
    ReturnAddressStack,
    TaskTargetBuffer,
)
from repro.sim import (
    simulate_indirect_target_prediction,
    simulate_task_prediction,
)

TRACE_LENGTH = 80_000


def target_buffer_comparison(name: str) -> None:
    workload = load_workload(name, n_tasks=TRACE_LENGTH)
    rows = []
    ttb = simulate_indirect_target_prediction(
        workload, TaskTargetBuffer(index_bits=20)
    )
    rows.append(["TTB (infinite, address-indexed)",
                 format_percent(ttb.miss_rate)])
    for config in ("1-0-5-6(1)", "3-5-6-6(2)", "5-5-6-7(3)"):
        stats = simulate_indirect_target_prediction(
            workload, CorrelatedTaskTargetBuffer(DolcSpec.parse(config))
        )
        rows.append([f"CTTB 8KB {config}", format_percent(stats.miss_rate)])
    ideal = simulate_indirect_target_prediction(
        workload, IdealCorrelatedTargetBuffer(depth=3)
    )
    rows.append(["CTTB (ideal, depth 3)", format_percent(ideal.miss_rate)])
    print(render_table(
        ["structure", "indirect-target miss"],
        rows,
        title=f"{name}: {ttb.trials} dynamic indirect exits",
    ))
    print()


def full_prediction_breakdown(name: str) -> None:
    workload = load_workload(name, n_tasks=TRACE_LENGTH)
    predictor = HeaderTaskPredictor(
        program=workload.compiled.program,
        exit_predictor=PathExitPredictor(DolcSpec.parse("6-5-8-9(3)")),
        cttb=CorrelatedTaskTargetBuffer(DolcSpec.parse("5-5-6-7(3)")),
        ras=ReturnAddressStack(depth=32),
    )
    stats = simulate_task_prediction(workload, predictor)
    rows = [
        [cf_type,
         stats.trials_by_type.get(cf_type, 0),
         format_percent(stats.miss_rate_for(cf_type))]
        for cf_type in sorted(stats.trials_by_type)
    ]
    rows.append(["TOTAL", stats.trials,
                 format_percent(stats.address_miss_rate)])
    print(render_table(
        ["actual exit type", "dynamic count", "next-address miss"],
        rows,
        title=f"{name}: full next-task prediction by exit type",
    ))
    print()


def main() -> None:
    for name in ("gcc", "xlisp"):
        target_buffer_comparison(name)
        full_prediction_breakdown(name)


if __name__ == "__main__":
    main()
