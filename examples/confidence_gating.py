"""Confidence-gated speculation: knowing when not to speculate.

A Multiscalar task mispredict squashes every younger task, so the *depth*
of speculation should depend on how trustworthy the current prediction is.
This example attaches the authors' MICRO-96 resetting-counter confidence
estimator to the depth-7 path predictor and sweeps the confidence
threshold, showing the coverage / accuracy / PVN trade-off a sequencer
designer would tune.

Run:  python examples/confidence_gating.py [benchmark]
"""

import sys

from repro import load_workload
from repro.evalx.report import format_percent, render_table
from repro.predictors import (
    DolcSpec,
    PathExitPredictor,
    ResettingConfidenceEstimator,
    simulate_confidence,
)

TRACE_LENGTH = 80_000
SPEC = "6-5-8-9(3)"


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    workload = load_workload(benchmark, n_tasks=TRACE_LENGTH)
    spec = DolcSpec.parse(SPEC)

    rows = []
    for threshold in (1, 2, 4, 8, 12):
        stats = simulate_confidence(
            workload,
            PathExitPredictor(spec),
            ResettingConfidenceEstimator(spec, threshold=threshold),
        )
        rows.append(
            [
                threshold,
                format_percent(stats.coverage, 1),
                format_percent(stats.high_confidence_accuracy, 1),
                format_percent(stats.pvn, 1),
            ]
        )
    print(render_table(
        ["threshold", "coverage", "high-conf accuracy",
         "PVN (miss | low-conf)"],
        rows,
        title=(
            f"{benchmark}: confidence gating over {SPEC} path prediction"
        ),
    ))
    print(
        "\nReading: raise the threshold to make 'high confidence' mean"
        "\nmore (accuracy ↑) at the cost of flagging fewer predictions"
        "\n(coverage ↓). A sequencer would speculate deeply only while"
        "\npredictions stay high-confidence."
    )


if __name__ == "__main__":
    main()
