"""Workload explorer: inspect a synthetic benchmark like a binary.

Shows what the generator + compiler actually produced for a benchmark:
program summary, validation against its calibration targets, loop
statistics, the hottest tasks with their disassembled headers, and the
dynamic exit-type mix — everything a user would check before trusting
experiment numbers from a workload.

Run:  python examples/workload_explorer.py [benchmark] [n_tasks]
"""

import sys
from collections import Counter

import numpy as np

from repro import load_workload
from repro.cfg.loops import natural_loops
from repro.evalx.report import render_table
from repro.isa.display import format_program_summary, format_task
from repro.isa.metrics import compute_program_metrics, format_metrics
from repro.synth.generator import SyntheticProgramGenerator
from repro.synth.trace import CF_TYPE_FROM_CODE
from repro.synth.validate import validate_workload


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "xlisp"
    n_tasks = int(sys.argv[2]) if len(sys.argv) > 2 else 100_000
    workload = load_workload(benchmark, n_tasks=n_tasks)
    program = workload.compiled.program

    print(format_program_summary(program))
    print()
    print(format_metrics(compute_program_metrics(program)))
    print()

    print(validate_workload(workload))
    print()

    program_cfg = SyntheticProgramGenerator(workload.profile).generate()
    loop_counts = [
        len(natural_loops(cfg)) for cfg in program_cfg.functions()
    ]
    print(
        f"loops: {sum(loop_counts)} natural loops across "
        f"{len(loop_counts)} functions "
        f"(max {max(loop_counts)} in one function)"
    )
    print()

    addrs, freqs = np.unique(workload.trace.task_addr, return_counts=True)
    hottest = sorted(
        zip(freqs.tolist(), addrs.tolist()), reverse=True
    )[:3]
    print("hottest tasks:")
    for count, addr in hottest:
        share = count / len(workload.trace)
        print(f"--- executed {count} times ({share:.1%}) ---")
        print(format_task(program.task(addr)))
    print()

    mix = Counter(
        str(CF_TYPE_FROM_CODE[int(code)])
        for code in workload.trace.cf_type.tolist()
    )
    rows = [
        [name, count, f"{count / len(workload.trace):.1%}"]
        for name, count in mix.most_common()
    ]
    print(render_table(
        ["exit type", "dynamic count", "share"], rows,
        title="dynamic exit mix",
    ))


if __name__ == "__main__":
    main()
