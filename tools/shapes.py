"""Shape-check helper: predictor orderings per benchmark."""
import sys
from repro.synth.workloads import load_workload
from repro.predictors import (IdealPathPredictor, IdealGlobalPredictor,
                              IdealPerTaskPredictor, PathExitPredictor, DolcSpec,
                              TaskTargetBuffer, CorrelatedTaskTargetBuffer,
                              IdealCorrelatedTargetBuffer)
from repro.sim import simulate_exit_prediction, simulate_indirect_target_prediction

names = sys.argv[1:] or ['gcc']
N = 200_000
for name in names:
    w = load_workload(name, n_tasks=N)
    print(f"== {name} ==")
    for depth in (0, 1, 2, 4, 7):
        row = []
        for label, cls in (('GLB', IdealGlobalPredictor), ('PATH', IdealPathPredictor), ('PER', IdealPerTaskPredictor)):
            s = simulate_exit_prediction(w, cls(depth))
            row.append(f"{label} {s.miss_rate*100:5.2f}%")
        print(f"  d{depth}: " + '  '.join(row))
    s = simulate_exit_prediction(w, PathExitPredictor(DolcSpec.parse('6-5-8-9(3)')))
    print(f"  real PATH 6-5-8-9(3): {s.miss_rate*100:.2f}%  states {s.states_touched}")
    s = simulate_indirect_target_prediction(w, TaskTargetBuffer(index_bits=20))
    print(f"  TTB inf: {s.miss_rate*100:.1f}% of {s.trials}")
    for d in (1, 3, 5, 7):
        s = simulate_indirect_target_prediction(w, IdealCorrelatedTargetBuffer(depth=d))
        print(f"  ideal CTTB d{d}: {s.miss_rate*100:.1f}%")
