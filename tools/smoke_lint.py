#!/usr/bin/env python
"""Lint CI smoke scripts for kill-window discipline.

The chaos/tune/service smoke jobs SIGKILL a live run mid-sweep to
prove checkpoint/lease recovery. That only tests what it claims to
when the kill window is deterministic and the kill hits exactly the
intended process:

* **Pinned victims** — a step that ``kill -9``s a run must first wedge
  it with a ``hang(...)`` fault glob (``--inject-faults 'hang(...)'``).
  Without the pin, a fast runner finishes the sweep before the kill
  lands and the "recovery" assertion silently tests an uninterrupted
  run.
* **PID targeting** — the kill must target a shell variable captured
  from ``$!`` (``victim=$!`` ... ``kill -9 "$victim"``). Pattern kills
  are banned: ``pkill -f <pattern>`` famously matches its own
  invoking shell or an unrelated tenant's run (the pattern appears in
  the command line of more processes than the intended one).

The workflow file is parsed line-wise on purpose: the CI analysis job
installs no YAML library, and steps are recognisable from ``- name:``
and ``run:`` lines alone.

Usage::

    python tools/smoke_lint.py .github/workflows/ci.yml [more.yml ...]

Exit status: 0 when every step passes, 1 with one message per
violation otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

_NAME_RE = re.compile(r"^\s*-\s+name:\s*(?P<name>.+?)\s*$")
_KILL9_RE = re.compile(r"\bkill\s+(-9|-KILL|-s\s+KILL)\b")
_KILL9_VAR_RE = re.compile(
    r"""\bkill\s+(?:-9|-KILL|-s\s+KILL)\s+"?\$\{?\w+\}?"?"""
)
_PKILL_F_RE = re.compile(r"\bpkill\b[^\n]*\s-f\b")
_PID_CAPTURE_RE = re.compile(r"\b\w+=\$!")
_HANG_PIN_RE = re.compile(r"--inject-faults\s+\S*hang\(")


def split_steps(text: str) -> list[tuple[str, str]]:
    """``(step name, step text)`` for each named workflow step.

    Step text runs until the next ``- name:`` line; job boundaries do
    not matter because every check is intra-step.
    """
    steps: list[tuple[str, str]] = []
    name: str | None = None
    lines: list[str] = []
    for line in text.splitlines():
        match = _NAME_RE.match(line)
        if match is not None:
            if name is not None:
                steps.append((name, "\n".join(lines)))
            name = match.group("name").strip("\"'")
            lines = []
        elif name is not None:
            lines.append(line)
    if name is not None:
        steps.append((name, "\n".join(lines)))
    return steps


def lint_step(name: str, body: str) -> list[str]:
    """Violation messages for one step (empty when clean)."""
    problems: list[str] = []
    if _PKILL_F_RE.search(body):
        problems.append(
            f"step {name!r} uses 'pkill -f': pattern kills match the "
            "invoking shell and unrelated processes — capture the pid "
            "with 'victim=$!' and 'kill -9 \"$victim\"' instead"
        )
    kills = _KILL9_RE.findall(body)
    if not kills:
        return problems
    if not _HANG_PIN_RE.search(body):
        problems.append(
            f"step {name!r} SIGKILLs a process without pinning the "
            "victim via an '--inject-faults ...hang(...)' fault glob; "
            "on a fast runner the run finishes before the kill lands "
            "and the recovery assertion tests nothing"
        )
    for line in body.splitlines():
        if _KILL9_RE.search(line) and not _KILL9_VAR_RE.search(line):
            problems.append(
                f"step {name!r} SIGKILLs a non-variable target "
                f"({line.strip()!r}); kill must target a pid captured "
                "in a shell variable (victim=$! ... kill -9 "
                '"$victim")'
            )
    if not _PID_CAPTURE_RE.search(body):
        problems.append(
            f"step {name!r} SIGKILLs without capturing the victim pid "
            "from '$!' in the same step; the kill target's provenance "
            "must be visible where the kill happens"
        )
    return problems


def lint_file(path: Path) -> list[str]:
    problems: list[str] = []
    for name, body in split_steps(path.read_text(encoding="utf-8")):
        for message in lint_step(name, body):
            problems.append(f"{path}: {message}")
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print(
            "usage: python tools/smoke_lint.py WORKFLOW.yml [...]",
            file=sys.stderr,
        )
        return 2
    problems: list[str] = []
    for raw in args:
        path = Path(raw)
        if not path.exists():
            print(f"error: no such file {raw!r}", file=sys.stderr)
            return 2
        problems.extend(lint_file(path))
    for message in problems:
        print(message, file=sys.stderr)
    if problems:
        print(f"{len(problems)} smoke-lint violation(s)", file=sys.stderr)
        return 1
    print("smoke-lint: kill-window discipline ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
