#!/usr/bin/env python
"""Compare a benchmark run against a committed BENCH snapshot.

The perf suite (``pytest benchmarks/test_perf.py -s``) prints one
machine-readable line per benchmark::

    BENCH {"name": ..., "serial_s": ..., "fast_s": ..., "speedup": ...}

This tool extracts those lines from a log (or stdin), pairs them with a
committed snapshot (``BENCH_PR6.json``), and fails when a kernel's
*speedup ratio* regressed. Raw seconds are useless across machines — a
laptop and a CI runner disagree by 3x on everything — but serial and
vectorized paths run on the *same* machine in the same process, so
their ratio cancels hardware speed. The gate therefore compares
ratios, two ways:

* **relative**: current speedup must be at least ``tolerance`` times
  the snapshot speedup (default 0.5 — generous because single-run
  ratios wobble with cache state and CI noise; see docs/PERF.md);
* **absolute**: when the snapshot records a ``floor`` for a benchmark,
  the current speedup must meet it regardless of what the snapshot's
  own ratio was. Floors encode hard acceptance criteria (the Table 4
  sweep must stay >= 8x) and survive snapshot refreshes.

A benchmark present in the snapshot but missing from the run is a
failure (a silently-skipped benchmark is how gates rot); a new
benchmark absent from the snapshot is reported but passes — commit an
updated snapshot (``--update``) to start gating it.

Usage::

    pytest benchmarks/test_perf.py -q -s | tee bench.log
    python tools/bench_compare.py --snapshot BENCH_PR6.json bench.log
    python tools/bench_compare.py --snapshot BENCH_PR6.json bench.log \
        --update BENCH_PR6.json   # refresh after a deliberate change
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SNAPSHOT_VERSION = 1

#: Hard speedup floors (acceptance criteria), re-applied on --update so
#: a refreshed snapshot cannot silently drop a gate.
DEFAULT_FLOORS = {
    "table4_sweep_cold[100k]": 8.0,
    "table4_sweep_warm[100k]": 8.0,
    "speculative_perfect[gcc-100k]": 5.0,
    "exit_kernel[gcc-100k]": 1.5,
    "detailed_event_skip[gcc-8k]": 1.2,
}


def parse_bench_lines(text: str) -> dict[str, dict]:
    """Extract ``BENCH {...}`` records from a log, keyed by name."""
    records: dict[str, dict] = {}
    for line in text.splitlines():
        # pytest progress dots may prefix the marker (".BENCH {...}"),
        # so search rather than anchor.
        marker = line.find("BENCH {")
        if marker < 0:
            continue
        payload = json.loads(line[marker + len("BENCH "):])
        records[payload["name"]] = payload
    return records


def load_snapshot(path: Path) -> dict:
    snapshot = json.loads(path.read_text(encoding="utf-8"))
    version = snapshot.get("version")
    if version != SNAPSHOT_VERSION:
        raise SystemExit(
            f"unsupported snapshot version {version!r} in {path} "
            f"(expected {SNAPSHOT_VERSION})"
        )
    return snapshot


def write_snapshot(path: Path, records: dict[str, dict]) -> None:
    benchmarks = {
        name: {
            "serial_s": rec["serial_s"],
            "fast_s": rec["fast_s"],
            "speedup": rec["speedup"],
            **(
                {"floor": DEFAULT_FLOORS[name]}
                if name in DEFAULT_FLOORS
                else {}
            ),
        }
        for name, rec in sorted(records.items())
    }
    path.write_text(
        json.dumps(
            {"version": SNAPSHOT_VERSION, "benchmarks": benchmarks},
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )


def compare(
    snapshot: dict, records: dict[str, dict], tolerance: float
) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures: list[str] = []
    baseline = snapshot["benchmarks"]
    for name, entry in sorted(baseline.items()):
        record = records.get(name)
        if record is None:
            failures.append(f"{name}: benchmark missing from this run")
            continue
        speedup = record.get("speedup")
        if not speedup:
            failures.append(f"{name}: run reported no speedup ratio")
            continue
        reference = entry["speedup"]
        allowed = tolerance * reference
        status = "ok"
        if speedup < allowed:
            status = "REGRESSION"
            failures.append(
                f"{name}: speedup {speedup:.2f}x < {allowed:.2f}x "
                f"({tolerance:.0%} of snapshot {reference:.2f}x)"
            )
        floor = entry.get("floor")
        if floor is not None and speedup < floor:
            status = "REGRESSION"
            failures.append(
                f"{name}: speedup {speedup:.2f}x below the hard floor "
                f"{floor:.2f}x"
            )
        floor_text = f" floor={floor:.1f}x" if floor is not None else ""
        print(
            f"{status:>10}  {name}: {speedup:.2f}x "
            f"(snapshot {reference:.2f}x{floor_text})"
        )
    for name in sorted(set(records) - set(baseline)):
        print(
            f"{'new':>10}  {name}: {records[name]['speedup']}x "
            "(not in snapshot; --update to gate it)"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate benchmark speedup ratios against a snapshot."
    )
    parser.add_argument(
        "log",
        nargs="?",
        help="log file with BENCH lines (default: stdin)",
    )
    parser.add_argument(
        "--snapshot",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_PR6.json",
        help="committed snapshot to compare against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help=(
            "minimum fraction of the snapshot speedup that still "
            "passes (default 0.5)"
        ),
    )
    parser.add_argument(
        "--update",
        type=Path,
        default=None,
        help="write the run's numbers to this snapshot path and exit",
    )
    args = parser.parse_args(argv)

    text = (
        Path(args.log).read_text(encoding="utf-8")
        if args.log
        else sys.stdin.read()
    )
    records = parse_bench_lines(text)
    if not records:
        print("no BENCH lines found in input", file=sys.stderr)
        return 2

    if args.update is not None:
        write_snapshot(args.update, records)
        print(f"snapshot written: {args.update} ({len(records)} benchmarks)")
        return 0

    snapshot = load_snapshot(args.snapshot)
    failures = compare(snapshot, records, args.tolerance)
    if failures:
        print(
            f"\n{len(failures)} perf regression(s):", file=sys.stderr
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed ({len(snapshot['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
