"""Calibration helper: report Table-2-style stats for each profile."""
import sys
import numpy as np
from repro.synth.workloads import build_program
from repro.synth.executor import TraceExecutor
from repro.synth.trace import CF_TYPE_FROM_CODE
from repro.synth.profiles import get_profile

names = sys.argv[1:] or ['gcc', 'compress', 'espresso', 'sc', 'xlisp']
for name in names:
    p = get_profile(name)
    c = build_program(name)
    tr = TraceExecutor(c, seed=p.seed).run(300000)
    codes, counts = np.unique(tr.cf_type, return_counts=True)
    mix = {str(CF_TYPE_FROM_CODE[int(k)])[:6]: round(float(v)/len(tr), 3)
           for k, v in zip(codes, counts)}
    print(f"{name:9s} static {c.program.static_task_count:6d} (paper {p.paper.static_tasks:6d})  "
          f"seen {tr.distinct_tasks_seen():5d} (paper {p.paper.distinct_tasks_seen:5d})")
    print(f"          mix {mix}")
