"""Chaos harness: fault injection, graceful interrupts, kill-and-resume.

The acceptance scenario from the robustness issue lives here: a pooled
CLI run is hard-killed (SIGKILL — no cleanup whatsoever) partway through
a checkpointed sweep, then restarted with ``--resume`` and must complete
with byte-identical output and without re-running the finished cells.
Around it: the fault-spec grammar, deterministic victim selection,
inert-by-default guarantees, each worker-side fault action driven
through the real scheduler, and SIGTERM/KeyboardInterrupt handling.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.evalx import faults
from repro.evalx.checkpoint import CheckpointStore
from repro.evalx.faults import (
    FaultPlan,
    FaultSpecError,
    InjectedFault,
    parse_spec,
)
from repro.evalx.metrics import RunMetrics
from repro.evalx.parallel import (
    Cell,
    execute_cells,
    is_failure,
    run_sharded,
)
from repro.evalx.result import ExperimentResult


class TestSpecGrammar:
    def test_full_clause_parses(self):
        (clause,) = parse_spec("hang(2.5)@gcc:*#3~2")
        assert clause.action == "hang"
        assert clause.seconds == 2.5
        assert clause.glob == "gcc:*"
        assert clause.count == 3
        assert clause.attempt == 2

    def test_defaults(self):
        (clause,) = parse_spec("raise")
        assert (clause.glob, clause.count, clause.attempt) == ("*", 1, 1)

    def test_multiple_clauses(self):
        clauses = parse_spec("kill@gcc, raise@*#2, corrupt-checkpoint@sc")
        assert [c.action for c in clauses] == [
            "kill", "raise", "corrupt-checkpoint"
        ]

    @pytest.mark.parametrize(
        "bad", ["", "explode@x", "hang@x", "raise@", "kill#x", "42"]
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_spec(bad)


class TestPlanDeterminism:
    LABELS = [f"bench{i}:cfg{j}" for i in range(4) for j in range(3)]

    def test_same_inputs_same_victims(self):
        one = FaultPlan.compile("raise@*#3", seed=7, labels=self.LABELS)
        two = FaultPlan.compile(
            "raise@*#3", seed=7, labels=list(reversed(self.LABELS))
        )
        assert one.triggers == two.triggers  # label order is irrelevant

    def test_seed_changes_victims(self):
        one = FaultPlan.compile("raise@*#2", seed=1, labels=self.LABELS)
        two = FaultPlan.compile("raise@*#2", seed=2, labels=self.LABELS)
        assert one.triggers != two.triggers

    def test_glob_restricts_victims(self):
        plan = FaultPlan.compile(
            "kill@bench2:*#99", seed=0, labels=self.LABELS
        )
        assert all(
            t.label.startswith("bench2:") for t in plan.triggers
        )
        assert len(plan.triggers) == 3  # count capped at the matches

    def test_json_round_trip(self):
        plan = FaultPlan.compile(
            "hang(1.5)@*#2,corrupt-trace@bench0:cfg0",
            seed=9,
            labels=self.LABELS,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert all(
            t.action == "corrupt-trace" for t in plan.store_triggers()
        )


class TestInertByDefault:
    """Satellite guarantee: no plan installed means zero behaviour change."""

    def test_fire_is_a_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        faults.fire("any-cell", 1)  # must not raise, hang, or exit

    def test_install_uninstall_round_trip(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        plan = FaultPlan.compile("raise@a", seed=0, labels=["a", "b"])
        faults.install(plan)
        try:
            assert faults.active_plan() == plan
        finally:
            faults.uninstall()
        assert faults.active_plan() is None


def _identity(x):
    return x


def _install_for_test(monkeypatch, spec, labels, seed=0):
    plan = FaultPlan.compile(spec, seed=seed, labels=labels)
    monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
    return plan


class TestWorkerSideFaults:
    """Each action driven through the real scheduler, serial and pooled."""

    def _cells(self):
        return [
            Cell(label=f"c{v}", fn=_identity, kwargs={"x": v})
            for v in (1, 2, 3)
        ]

    def test_raise_fault_fails_the_planned_cell_only(self, monkeypatch):
        _install_for_test(monkeypatch, "raise@c2", ["c1", "c2", "c3"])
        results = execute_cells(self._cells(), keep_going=True)
        assert results[0] == 1 and results[2] == 3
        assert is_failure(results[1])
        assert "injected fault" in results[1].error

    def test_raise_fault_on_attempt_one_only_lets_retry_succeed(
        self, monkeypatch
    ):
        from repro.evalx.parallel import RetryPolicy

        _install_for_test(monkeypatch, "raise@c2~1", ["c1", "c2", "c3"])
        results = execute_cells(
            self._cells(),
            retry=RetryPolicy(retries=1, backoff_seconds=0.01),
        )
        assert results == [1, 2, 3]  # attempt 2 is not a victim

    def test_kill_fault_crashes_worker_and_is_attributed(
        self, monkeypatch
    ):
        _install_for_test(monkeypatch, "kill@c2", ["c1", "c2", "c3"])
        results = execute_cells(self._cells(), jobs=2, keep_going=True)
        assert results[0] == 1 and results[2] == 3
        assert is_failure(results[1])
        assert results[1].kind == "crash"

    def test_hang_fault_trips_the_cell_timeout(self, monkeypatch):
        from repro.evalx.parallel import RetryPolicy

        _install_for_test(monkeypatch, "hang(5)@c2", ["c1", "c2", "c3"])
        started = time.monotonic()
        results = execute_cells(
            self._cells(),
            jobs=2,
            keep_going=True,
            retry=RetryPolicy(timeout_seconds=0.5),
        )
        assert is_failure(results[1]) and results[1].kind == "timeout"
        assert time.monotonic() - started < 5


# -- graceful interrupts ----------------------------------------------

def _self_sigterm(x):
    os.kill(os.getpid(), signal.SIGTERM)
    time.sleep(5)  # the handler's KeyboardInterrupt lands before this ends
    return x


def _interrupt_module(calls_path):
    def cells(n_tasks=None, quick=False):
        return [
            Cell(
                label="first",
                fn=_counted_identity,
                kwargs={"x": 1, "calls_path": str(calls_path)},
            ),
            Cell(label="boom", fn=_self_sigterm, kwargs={"x": 2}),
            Cell(
                label="never",
                fn=_counted_identity,
                kwargs={"x": 3, "calls_path": str(calls_path)},
            ),
        ]

    def combine(cells, results, n_tasks=None, quick=False):
        return ExperimentResult(
            experiment_id="interrupt-fixture",
            title="t",
            text=str(results),
            data={},
        )

    return SimpleNamespace(
        __name__="tests.interrupt", cells=cells, combine=combine
    )


def _counted_identity(x, calls_path):
    with open(calls_path, "a") as handle:
        handle.write(f"{x}\n")
    return x


class TestGracefulInterrupt:
    def test_sigterm_flushes_metrics_and_leaves_store_resumable(
        self, tmp_path
    ):
        calls = tmp_path / "calls.txt"
        module = _interrupt_module(calls)
        store_dir = tmp_path / "ckpt"
        metrics_path = tmp_path / "metrics.jsonl"

        with RunMetrics(path=metrics_path, progress=False) as metrics:
            with pytest.raises(KeyboardInterrupt):
                run_sharded(
                    module,
                    checkpoint=CheckpointStore(store_dir),
                    metrics=metrics,
                )

        # The signal handler was restored on the way out.
        assert signal.getsignal(signal.SIGTERM) in (
            signal.SIG_DFL, signal.default_int_handler,
        )
        # The first cell completed and was persisted; the third never ran.
        assert calls.read_text().splitlines() == ["1"]
        assert len(list(store_dir.glob("*.ckpt.json"))) == 1

        records = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        interrupts = [r for r in records if r["event"] == "interrupt"]
        assert len(interrupts) == 1
        assert interrupts[0]["signal"] == "SIGTERM"
        # end_experiment still ran: the stream is well-formed.
        assert records[-1]["event"] == "experiment"

    def test_resume_after_interrupt_completes_the_sweep(self, tmp_path):
        calls = tmp_path / "calls.txt"
        module = _interrupt_module(calls)
        store_dir = tmp_path / "ckpt"
        with pytest.raises(KeyboardInterrupt):
            run_sharded(module, checkpoint=CheckpointStore(store_dir))

        # Second run: no signal this time (replace the bomb cell).
        def calm_cells(n_tasks=None, quick=False):
            cells = module.cells()
            return [
                cells[0],
                Cell(label="boom", fn=_identity, kwargs={"x": 2}),
                cells[2],
            ]

        calm = SimpleNamespace(
            __name__="tests.interrupt",
            cells=calm_cells,
            combine=module.combine,
        )
        result = run_sharded(
            calm, checkpoint=CheckpointStore(store_dir, resume=True)
        )
        assert result.text == "[1, 2, 3]"
        # "first" was served from the store, not re-run.
        assert calls.read_text().splitlines() == ["1", "3"]


# -- the CLI acceptance scenario: SIGKILL mid-run, resume, compare -----

REPO_ROOT = Path(__file__).resolve().parent.parent


def _cli_env(cache_dir: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop(faults.ENV_VAR, None)
    return env


def _run_cli(args, env, **popen_kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro.evalx", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
        **popen_kwargs,
    )


def _strip_timing(stdout: str) -> str:
    return "\n".join(
        line
        for line in stdout.splitlines()
        if not line.startswith("[table2 completed in")
    )


@pytest.mark.slow
class TestKillAndResumeCLI:
    """SIGKILL a pooled checkpointed run; ``--resume`` must finish it
    byte-identically and without re-running completed cells."""

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        cache = tmp_path / "trace-cache"
        env = _cli_env(cache)
        store = tmp_path / "ckpt"
        base = ["table2", "--quick", "--tasks", "4000"]

        reference = _run_cli(base, env)
        assert reference.returncode == 0, reference.stderr

        # A hang fault pins the last cell so the run cannot finish
        # before the kill lands; SIGKILL gives it zero chance to clean
        # up — exactly an OOM-killer or CI-preemption death.
        victim = subprocess.Popen(
            [
                sys.executable, "-m", "repro.evalx", *base,
                "--jobs", "2",
                "--checkpoint-dir", str(store),
                "--inject-faults", "hang(120)@xlisp",
                "--fault-seed", "7",
                "--metrics", str(tmp_path / "killed.jsonl"),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if len(list(store.glob("*.ckpt.json"))) >= 2:
                    break
                if victim.poll() is not None:
                    pytest.fail(
                        "run finished before the kill could land"
                    )
                time.sleep(0.05)
            else:
                pytest.fail("no checkpoint records appeared in time")
            victim.kill()  # SIGKILL: no handlers, no atexit, nothing
        finally:
            if victim.poll() is None:
                victim.kill()
            victim.wait()

        persisted = len(list(store.glob("*.ckpt.json")))
        assert 2 <= persisted < 5  # killed mid-sweep, records survived

        resume = _run_cli(
            [
                *base,
                "--checkpoint-dir", str(store),
                "--resume",
                "--metrics", str(tmp_path / "resumed.jsonl"),
            ],
            env,
        )
        assert resume.returncode == 0, resume.stderr
        assert _strip_timing(resume.stdout) == _strip_timing(
            reference.stdout
        )

        records = [
            json.loads(line)
            for line in (tmp_path / "resumed.jsonl")
            .read_text()
            .splitlines()
        ]
        resumed = [
            r
            for r in records
            if r["event"] == "checkpoint" and r["action"] == "resume"
        ]
        assert len(resumed) == persisted  # every survivor was served
        summary = records[-1]
        assert summary["event"] == "experiment"
        assert summary["cells"] == 5 and summary["failed"] == 0
        assert summary["resumed"] == persisted

    def test_corrupted_record_is_detected_and_rerun_exit_zero(
        self, tmp_path
    ):
        cache = tmp_path / "trace-cache"
        env = _cli_env(cache)
        store = tmp_path / "ckpt"
        base = ["table2", "--quick", "--tasks", "4000"]

        populate = _run_cli(
            [*base, "--checkpoint-dir", str(store)], env
        )
        assert populate.returncode == 0, populate.stderr
        reference = _strip_timing(populate.stdout)

        victim = sorted(store.glob("*.ckpt.json"))[2]
        faults.corrupt_file(victim)

        resume = _run_cli(
            [
                *base,
                "--checkpoint-dir", str(store),
                "--resume",
                "--metrics", str(tmp_path / "m.jsonl"),
            ],
            env,
        )
        assert resume.returncode == 0, resume.stderr
        assert _strip_timing(resume.stdout) == reference

        records = [
            json.loads(line)
            for line in (tmp_path / "m.jsonl").read_text().splitlines()
        ]
        actions = [
            r["action"] for r in records if r["event"] == "checkpoint"
        ]
        assert actions.count("corrupt") == 1
        assert actions.count("resume") == 4
        assert actions.count("saved") == 1  # the re-run re-persisted


class TestAnyAttemptWildcard:
    """``~0`` fires on *every* attempt — the poison-cell grammar.

    A default clause (``~1``) lets retries succeed; ``~0`` models a
    cell that misbehaves no matter which attempt (or, for
    ``kill-worker``, which lease generation) touches it.
    """

    def test_parse_attempt_zero(self):
        (clause,) = parse_spec("kill-worker@gcc~0")
        assert clause.action == "kill-worker"
        assert clause.glob == "gcc"
        assert clause.attempt == 0

    def test_wildcard_fires_on_every_attempt(self, monkeypatch):
        plan = FaultPlan.compile(
            "raise@poison~0", seed=0, labels=["poison", "clean"]
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        for attempt in (1, 2, 7):
            with pytest.raises(InjectedFault):
                faults.fire("poison", attempt)
        faults.fire("clean", 1)  # untargeted labels stay clean

    def test_default_attempt_still_fires_once(self, monkeypatch):
        plan = FaultPlan.compile(
            "raise@poison", seed=0, labels=["poison"]
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        with pytest.raises(InjectedFault):
            faults.fire("poison", 1)
        faults.fire("poison", 2)  # the retry succeeds
