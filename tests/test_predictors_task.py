"""Tests for the composed next-task predictors and the bimodal predictor."""

import pytest

from repro.errors import PredictorConfigError, SimulationError
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.task_predictor import (
    CttbOnlyTaskPredictor,
    HeaderTaskPredictor,
    PerfectTaskPredictor,
)
from repro.predictors.ttb import CorrelatedTaskTargetBuffer
from repro.sim.functional import (
    simulate_task_prediction,
)

from tests.helpers import (
    call_program,
    compile_small,
    make_workload,
    run_trace,
    straightline_program,
)


def header_predictor(program, spec="2-3-3-5(1)"):
    return HeaderTaskPredictor(
        program=program,
        exit_predictor=PathExitPredictor(DolcSpec.parse("2-4-5-5(1)")),
        cttb=CorrelatedTaskTargetBuffer(DolcSpec.parse(spec)),
        ras=ReturnAddressStack(depth=16),
    )


class TestHeaderTaskPredictor:
    def test_branch_exits_predicted_from_header(self):
        from repro.synth.behavior import FixedChoice
        from tests.helpers import diamond_program

        compiled = compile_small(diamond_program(FixedChoice(0)), max_blocks=1)
        trace = run_trace(compiled, 200)
        workload = make_workload(compiled, trace)
        predictor = header_predictor(compiled.program)
        stats = simulate_task_prediction(workload, predictor)
        # Branch targets come from headers, and the exit choice is fixed:
        # after a short warmup every branch exit is predicted exactly. Only
        # main's own RETURN (driver re-entry, empty RAS) can miss.
        assert stats.miss_rate_for("branch") < 0.1

    def test_calls_and_returns_use_ras(self):
        compiled = compile_small(call_program())
        trace = run_trace(compiled, 100)
        workload = make_workload(compiled, trace)
        predictor = header_predictor(compiled.program)
        stats = simulate_task_prediction(workload, predictor)
        # After warmup the RAS predicts every return from f exactly; only
        # main's own returns (stack empty -> driver re-entry) can miss.
        return_miss = stats.miss_rate_for("return")
        assert return_miss < 0.35
        assert stats.miss_rate_for("call") == 0.0

    def test_unknown_task_rejected(self):
        compiled = compile_small(call_program())
        predictor = header_predictor(compiled.program)
        with pytest.raises(SimulationError):
            predictor.predict(0xDEAD00)

    def test_storage_sums_components(self):
        compiled = compile_small(call_program())
        predictor = header_predictor(compiled.program)
        expected = (
            predictor.exit_predictor.storage_bits()
            + CorrelatedTaskTargetBuffer(
                DolcSpec.parse("2-3-3-5(1)")
            ).storage_bits()
            + ReturnAddressStack(depth=16).storage_bits()
        )
        assert predictor.storage_bits() == expected


class TestCttbOnlyPredictor:
    def test_learns_straightline_successors(self):
        compiled = compile_small(straightline_program())
        trace = run_trace(compiled, 60)
        workload = make_workload(compiled, trace)
        predictor = CttbOnlyTaskPredictor(
            CorrelatedTaskTargetBuffer(DolcSpec.parse("2-3-3-5(1)"))
        )
        stats = simulate_task_prediction(workload, predictor)
        # After the cold start, a fixed-successor program is fully learned.
        assert stats.address_misses < len(trace) // 4

    def test_worse_than_header_on_call_heavy_benchmark(self, xlisp_workload):
        """The CTTB-only scheme lacks a RAS, so call-heavy code suffers —
        the paper's main finding in §5.4 / Table 3. xlisp's deep recursive
        call stacks outrun what path correlation can recover."""
        cttb_only = simulate_task_prediction(
            xlisp_workload,
            CttbOnlyTaskPredictor(
                CorrelatedTaskTargetBuffer(DolcSpec.parse("7-4-9-9(3)"))
            ),
        )
        with_header = simulate_task_prediction(
            xlisp_workload,
            HeaderTaskPredictor(
                program=xlisp_workload.compiled.program,
                exit_predictor=PathExitPredictor(
                    DolcSpec.parse("7-4-9-9(3)")
                ),
                cttb=CorrelatedTaskTargetBuffer(
                    DolcSpec.parse("5-5-6-7(3)")
                ),
                ras=ReturnAddressStack(depth=32),
            ),
        )
        assert (
            with_header.address_miss_rate < cttb_only.address_miss_rate
        )
        # And specifically because returns lose the RAS:
        assert with_header.miss_rate_for("return") < cttb_only.miss_rate_for(
            "return"
        )


class TestPerfectTaskPredictor:
    def test_never_mispredicts(self):
        compiled = compile_small(call_program())
        trace = run_trace(compiled, 50)
        workload = make_workload(compiled, trace)
        stats = simulate_task_prediction(
            workload, PerfectTaskPredictor(trace)
        )
        assert stats.address_misses == 0

    def test_out_of_order_query_rejected(self):
        compiled = compile_small(call_program())
        trace = run_trace(compiled, 10)
        predictor = PerfectTaskPredictor(trace)
        wrong_addr = int(trace.task_addr[5])
        if wrong_addr == int(trace.task_addr[0]):
            pytest.skip("trace starts where it continues")
        with pytest.raises(PredictorConfigError):
            predictor.predict(wrong_addr)

    def test_running_past_trace_rejected(self):
        compiled = compile_small(call_program())
        trace = run_trace(compiled, 5)
        predictor = PerfectTaskPredictor(trace)
        for i in range(5):
            predictor.predict(int(trace.task_addr[i]))
            predictor.update(0, 0, 0, 0)
        with pytest.raises(SimulationError):
            predictor.predict(int(trace.task_addr[0]))


class TestBimodalPredictor:
    def test_initially_weakly_not_taken(self):
        assert BimodalPredictor().predict("b") is False

    def test_learns_taken_branch(self):
        bimodal = BimodalPredictor()
        bimodal.update("b", True)
        assert bimodal.predict("b") is True

    def test_hysteresis_after_saturation(self):
        bimodal = BimodalPredictor()
        for _ in range(4):
            bimodal.update("b", True)
        bimodal.update("b", False)
        assert bimodal.predict("b") is True  # strong -> weak, still taken

    def test_predict_and_update_reports_correctness(self):
        bimodal = BimodalPredictor()
        assert bimodal.predict_and_update("b", False) is True
        assert bimodal.predict_and_update("b", True) is False

    def test_branches_tracked(self):
        bimodal = BimodalPredictor()
        bimodal.update("a", True)
        bimodal.update("b", False)
        assert bimodal.branches_tracked() == 2

    def test_independent_branches(self):
        bimodal = BimodalPredictor()
        for _ in range(3):
            bimodal.update("t", True)
        assert bimodal.predict("u") is False
