"""Unit and property tests for repro.utils.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.utils.bits import (
    bit_mask,
    extract_bits,
    fold_xor,
    low_bits,
    required_bits,
)


class TestBitMask:
    def test_zero_width(self):
        assert bit_mask(0) == 0

    def test_small_widths(self):
        assert bit_mask(1) == 1
        assert bit_mask(4) == 0xF
        assert bit_mask(32) == 0xFFFF_FFFF

    def test_negative_width_rejected(self):
        with pytest.raises(EncodingError):
            bit_mask(-1)

    @given(st.integers(min_value=0, max_value=128))
    def test_mask_has_width_bits_set(self, width):
        assert bit_mask(width).bit_count() == width


class TestLowBits:
    def test_truncates(self):
        assert low_bits(0b101101, 3) == 0b101

    def test_zero_width_gives_zero(self):
        assert low_bits(12345, 0) == 0

    @given(st.integers(min_value=0), st.integers(min_value=0, max_value=64))
    def test_result_fits_in_width(self, value, width):
        assert low_bits(value, width) <= bit_mask(width)


class TestExtractBits:
    def test_middle_field(self):
        assert extract_bits(0b110100, 2, 3) == 0b101

    def test_offset_zero_equals_low_bits(self):
        assert extract_bits(0xABCD, 0, 8) == low_bits(0xABCD, 8)

    def test_negative_offset_rejected(self):
        with pytest.raises(EncodingError):
            extract_bits(1, -1, 2)

    @given(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=0, max_value=32),
        st.integers(min_value=0, max_value=32),
    )
    def test_extract_matches_shift_and_mask(self, value, lo, width):
        assert extract_bits(value, lo, width) == (value >> lo) & bit_mask(width)


class TestFoldXor:
    def test_single_fold_is_identity_mask(self):
        assert fold_xor(0b1011, 4, 1) == 0b1011

    def test_two_folds(self):
        assert fold_xor(0b1010_0110, 8, 2) == 0b1010 ^ 0b0110

    def test_three_folds(self):
        value = (0b111 << 6) | (0b010 << 3) | 0b100
        assert fold_xor(value, 9, 3) == 0b111 ^ 0b010 ^ 0b100

    def test_indivisible_width_rejected(self):
        with pytest.raises(EncodingError):
            fold_xor(0xFF, 7, 2)

    def test_zero_folds_rejected(self):
        with pytest.raises(EncodingError):
            fold_xor(0xFF, 8, 0)

    @given(
        st.integers(min_value=0, max_value=2**48 - 1),
        st.sampled_from([(48, 2), (48, 3), (48, 4), (48, 6)]),
    )
    def test_folded_value_fits_field(self, value, shape):
        width, folds = shape
        assert fold_xor(value, width, folds) <= bit_mask(width // folds)

    @given(st.integers(min_value=0, max_value=2**24 - 1))
    def test_fold_is_linear_in_xor(self, value):
        other = 0xA5A5A5
        folded_both = fold_xor(value ^ other, 24, 3)
        assert folded_both == fold_xor(value, 24, 3) ^ fold_xor(other, 24, 3)


class TestRequiredBits:
    def test_exact_powers(self):
        assert required_bits(2) == 1
        assert required_bits(4) == 2
        assert required_bits(5) == 3

    def test_one_value_needs_one_bit(self):
        assert required_bits(1) == 1

    def test_zero_rejected(self):
        with pytest.raises(EncodingError):
            required_bits(0)
