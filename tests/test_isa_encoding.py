"""Round-trip and size tests for the task-header binary encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.controlflow import ControlFlowType
from repro.isa.encoding import (
    EXIT_SPECIFIER_BITS,
    decode_header,
    encode_header,
    header_size_bits,
)
from repro.isa.task import TaskExit, TaskHeader

_ADDRESSES = st.integers(min_value=0, max_value=(1 << 32) - 1)


@st.composite
def task_exits(draw):
    cf_type = draw(st.sampled_from(list(ControlFlowType)))
    if cf_type in (ControlFlowType.BRANCH, ControlFlowType.CALL):
        target = draw(_ADDRESSES)
    else:
        target = None
    if cf_type in (ControlFlowType.CALL, ControlFlowType.INDIRECT_CALL):
        return_address = draw(_ADDRESSES)
    else:
        return_address = None
    return TaskExit(
        cf_type=cf_type, target=target, return_address=return_address
    )


@st.composite
def task_headers(draw):
    exits = draw(st.lists(task_exits(), min_size=1, max_size=4))
    create_mask = draw(st.integers(min_value=0, max_value=0xFFFF))
    return TaskHeader(exits=tuple(exits), create_mask=create_mask)


class TestHeaderEncoding:
    @given(task_headers())
    def test_round_trip(self, header):
        value, width = encode_header(header)
        assert decode_header(value, width) == header

    @given(task_headers())
    def test_encoded_width_matches_size_accounting(self, header):
        _, width = encode_header(header)
        assert width == header_size_bits(header)

    @given(task_headers())
    def test_value_fits_declared_width(self, header):
        value, width = encode_header(header)
        assert 0 <= value < (1 << width)

    def test_specifier_is_five_bits(self):
        # The paper: "This information is encoded in 5 bits."
        assert EXIT_SPECIFIER_BITS == 5

    def test_branch_exit_size(self):
        header = TaskHeader(
            exits=(TaskExit(cf_type=ControlFlowType.BRANCH, target=0x44),)
        )
        # 2 (count) + 16 (mask) + 5 (specifier) + 32 (target)
        assert header_size_bits(header) == 55

    def test_return_exit_is_smallest(self):
        header = TaskHeader(
            exits=(TaskExit(cf_type=ControlFlowType.RETURN),)
        )
        assert header_size_bits(header) == 23

    def test_call_exit_carries_two_addresses(self):
        header = TaskHeader(
            exits=(
                TaskExit(
                    cf_type=ControlFlowType.CALL,
                    target=0x100,
                    return_address=0x104,
                ),
            )
        )
        assert header_size_bits(header) == 2 + 16 + 5 + 64

    def test_decode_truncated_stream_fails(self):
        header = TaskHeader(
            exits=(TaskExit(cf_type=ControlFlowType.BRANCH, target=0x44),)
        )
        value, width = encode_header(header)
        from repro.errors import EncodingError

        with pytest.raises(EncodingError):
            decode_header(value, width - 8)
