"""Tests for the trace container and builder."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.synth.trace import (
    CF_TYPE_CODES,
    CF_TYPE_FROM_CODE,
    TaskTrace,
    TraceBuilder,
)


def build_sample(n=10):
    builder = TraceBuilder(program_name="sample")
    for i in range(n):
        builder.append(
            task_addr=0x1000 + 4 * (i % 3),
            exit_index=i % 2,
            cf_type_code=0,
            next_addr=0x1000 + 4 * ((i + 1) % 3),
            instructions=10 + i,
            internal_branches=2,
            internal_mispredicts=1,
        )
    return builder.build()


class TestTraceBuilder:
    def test_length_tracks_appends(self):
        builder = TraceBuilder()
        assert len(builder) == 0
        builder.append(0x1000, 0, 0, 0x1004, 5, 0, 0)
        assert len(builder) == 1

    def test_build_produces_correct_dtypes(self):
        trace = build_sample()
        assert trace.task_addr.dtype == np.uint32
        assert trace.exit_index.dtype == np.uint8
        assert trace.instructions.dtype == np.uint16

    def test_saturating_instruction_counts(self):
        builder = TraceBuilder()
        builder.append(0x1000, 0, 0, 0x1004, 10**6, 10**6, 10**6)
        trace = builder.build()
        assert int(trace.instructions[0]) == 0xFFFF


class TestTaskTrace:
    def test_column_length_mismatch_rejected(self):
        trace = build_sample()
        with pytest.raises(TraceError):
            TaskTrace(
                task_addr=trace.task_addr,
                exit_index=trace.exit_index[:-1],
                cf_type=trace.cf_type,
                next_addr=trace.next_addr,
                instructions=trace.instructions,
                internal_branches=trace.internal_branches,
                internal_mispredicts=trace.internal_mispredicts,
            )

    def test_distinct_tasks_seen(self):
        assert build_sample(9).distinct_tasks_seen() == 3

    def test_total_instructions(self):
        trace = build_sample(3)
        assert trace.total_instructions() == 10 + 11 + 12

    def test_head(self):
        trace = build_sample(10)
        head = trace.head(4)
        assert len(head) == 4
        assert head.program_name == "sample"
        np.testing.assert_array_equal(
            head.task_addr, trace.task_addr[:4]
        )

    def test_head_negative_rejected(self):
        with pytest.raises(TraceError):
            build_sample().head(-1)

    def test_save_load_round_trip(self, tmp_path):
        trace = build_sample(20)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = TaskTrace.load(path)
        assert loaded.program_name == trace.program_name
        for field in (
            "task_addr", "exit_index", "cf_type", "next_addr",
            "instructions", "internal_branches", "internal_mispredicts",
        ):
            np.testing.assert_array_equal(
                getattr(loaded, field), getattr(trace, field)
            )

    def test_load_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, task_addr=np.zeros(3, dtype=np.uint32))
        with pytest.raises(TraceError):
            TaskTrace.load(path)


class TestCfTypeCodes:
    def test_codes_are_a_bijection(self):
        assert len(CF_TYPE_CODES) == 5
        assert set(CF_TYPE_FROM_CODE) == set(CF_TYPE_CODES.values())
        for cf, code in CF_TYPE_CODES.items():
            assert CF_TYPE_FROM_CODE[code] is cf

    def test_codes_fit_uint8(self):
        assert all(0 <= code <= 255 for code in CF_TYPE_CODES.values())
