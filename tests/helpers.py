"""Hand-built miniature programs used across the test suite.

These construct tiny, fully deterministic ProgramCFGs so tests can assert
exact traces and prediction outcomes without depending on the synthetic
generator's sampling.
"""

from __future__ import annotations

from repro.cfg.basicblock import BasicBlock, Terminator, TerminatorKind
from repro.cfg.graph import ControlFlowGraph, ProgramCFG
from repro.compiler import PartitionConfig, compile_program
from repro.compiler.compiled import CompiledProgram
from repro.synth.behavior import ChoiceBehavior, FixedChoice
from repro.synth.executor import TraceExecutor
from repro.synth.trace import TaskTrace
from repro.synth.workloads import Workload
from repro.synth.profiles import BenchmarkProfile, PaperStats


def block(
    label: str,
    kind: TerminatorKind,
    successors: tuple[str, ...] = (),
    behavior: ChoiceBehavior | None = None,
    callee: str | None = None,
    callees: tuple[str, ...] = (),
    size: int = 4,
) -> BasicBlock:
    """Shorthand BasicBlock constructor."""
    return BasicBlock(
        label=label,
        terminator=Terminator(
            kind=kind,
            successors=successors,
            behavior=behavior,
            callee=callee,
            callees=callees,
        ),
        instruction_count=size,
    )


def straightline_program() -> ProgramCFG:
    """main: entry -> a -> b -> return. No branching at all."""
    cfg = ControlFlowGraph("main", entry_label="main.entry")
    cfg.add_block(block("main.entry", TerminatorKind.JUMP, ("main.a",)))
    cfg.add_block(block("main.a", TerminatorKind.JUMP, ("main.b",)))
    cfg.add_block(block("main.b", TerminatorKind.JUMP, ("main.ret",)))
    cfg.add_block(block("main.ret", TerminatorKind.RETURN))
    program = ProgramCFG(main="main")
    program.add_function(cfg)
    return program


def diamond_program(behavior: ChoiceBehavior | None = None) -> ProgramCFG:
    """main: a cond branch to two arms that re-join then return."""
    behavior = behavior or FixedChoice(0)
    cfg = ControlFlowGraph("main", entry_label="main.entry")
    cfg.add_block(block("main.entry", TerminatorKind.JUMP, ("main.cond",)))
    cfg.add_block(
        block(
            "main.cond",
            TerminatorKind.COND_BRANCH,
            ("main.then", "main.else"),
            behavior=behavior,
        )
    )
    cfg.add_block(block("main.then", TerminatorKind.JUMP, ("main.join",)))
    cfg.add_block(block("main.else", TerminatorKind.JUMP, ("main.join",)))
    cfg.add_block(block("main.join", TerminatorKind.JUMP, ("main.ret",)))
    cfg.add_block(block("main.ret", TerminatorKind.RETURN))
    program = ProgramCFG(main="main")
    program.add_function(cfg)
    return program


def call_program() -> ProgramCFG:
    """main calls f twice; f is a straight line. Exercises CALL/RETURN."""
    main = ControlFlowGraph("main", entry_label="main.entry")
    main.add_block(block("main.entry", TerminatorKind.JUMP, ("main.c1",)))
    main.add_block(
        block("main.c1", TerminatorKind.CALL, ("main.c2",), callee="f")
    )
    main.add_block(
        block("main.c2", TerminatorKind.CALL, ("main.ret",), callee="f")
    )
    main.add_block(block("main.ret", TerminatorKind.RETURN))
    f = ControlFlowGraph("f", entry_label="f.entry")
    f.add_block(block("f.entry", TerminatorKind.JUMP, ("f.ret",)))
    f.add_block(block("f.ret", TerminatorKind.RETURN))
    program = ProgramCFG(main="main")
    program.add_function(main)
    program.add_function(f)
    return program


def switch_program(behavior: ChoiceBehavior, arity: int = 3) -> ProgramCFG:
    """main: an indirect jump over ``arity`` cases, then return."""
    cfg = ControlFlowGraph("main", entry_label="main.entry")
    cases = tuple(f"main.case{i}" for i in range(arity))
    cfg.add_block(block("main.entry", TerminatorKind.JUMP, ("main.sw",)))
    cfg.add_block(
        block(
            "main.sw",
            TerminatorKind.INDIRECT_JUMP,
            cases,
            behavior=behavior,
        )
    )
    for case in cases:
        cfg.add_block(block(case, TerminatorKind.JUMP, ("main.ret",)))
    cfg.add_block(block("main.ret", TerminatorKind.RETURN))
    program = ProgramCFG(main="main")
    program.add_function(cfg)
    return program


def compile_small(
    program: ProgramCFG, max_blocks: int = 8
) -> CompiledProgram:
    """Compile a test program with a given task-size cap."""
    return compile_program(
        program,
        name="test",
        config=PartitionConfig(max_blocks_per_task=max_blocks),
    )


def run_trace(
    compiled: CompiledProgram, n_tasks: int, seed: int = 1
) -> TaskTrace:
    """Execute a compiled test program for ``n_tasks`` records."""
    return TraceExecutor(compiled, seed=seed).run(n_tasks)


def make_workload(
    compiled: CompiledProgram, trace: TaskTrace
) -> Workload:
    """Wrap a compiled program and trace as a Workload for the simulators."""
    profile = BenchmarkProfile(
        name="test",
        seed=0,
        paper=PaperStats("test", 0, 0, 0),
        n_hot_functions=1,
        n_cold_functions=0,
        call_levels=1,
        constructs_per_function=(1, 1),
    )
    return Workload(profile=profile, compiled=compiled, trace=trace)
