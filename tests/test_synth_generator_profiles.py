"""Tests for profiles, the program generator, and workload loading."""

import pytest

from repro.errors import WorkloadError
from repro.isa.controlflow import MAX_EXITS_PER_TASK
from repro.synth.generator import SyntheticProgramGenerator
from repro.synth.profiles import (
    BENCHMARK_NAMES,
    BenchmarkProfile,
    PROFILES,
    PaperStats,
    get_profile,
)
from repro.synth.workloads import build_program, load_workload


def tiny_profile(**overrides):
    base = dict(
        name="tiny",
        seed=1,
        paper=PaperStats("x", 0, 0, 0),
        n_hot_functions=4,
        n_cold_functions=2,
        call_levels=2,
        constructs_per_function=(3, 5),
    )
    base.update(overrides)
    return BenchmarkProfile(**base)


class TestProfiles:
    def test_all_five_benchmarks_present(self):
        assert set(PROFILES) == set(BENCHMARK_NAMES)
        assert set(BENCHMARK_NAMES) == {
            "gcc", "compress", "espresso", "sc", "xlisp",
        }

    def test_unknown_profile_rejected(self):
        with pytest.raises(WorkloadError):
            get_profile("doom")

    def test_validation_rejects_bad_ranges(self):
        with pytest.raises(WorkloadError):
            tiny_profile(n_hot_functions=0)
        with pytest.raises(WorkloadError):
            tiny_profile(constructs_per_function=(5, 3))
        with pytest.raises(WorkloadError):
            tiny_profile(call_levels=0)

    def test_validation_rejects_all_zero_weights(self):
        with pytest.raises(WorkloadError):
            tiny_profile(
                w_if=0, w_ifelse=0, w_loop=0, w_call=0,
                w_switch=0, w_icall=0, w_straight=0,
            )

    def test_paper_stats_recorded(self):
        assert get_profile("gcc").paper.static_tasks == 12525
        assert get_profile("compress").paper.distinct_tasks_seen == 39


class TestGenerator:
    def test_generated_program_validates(self):
        program = SyntheticProgramGenerator(tiny_profile()).generate()
        program.validate()
        assert "main" in program

    def test_generation_is_deterministic(self):
        a = SyntheticProgramGenerator(tiny_profile()).generate()
        b = SyntheticProgramGenerator(tiny_profile()).generate()
        assert sorted(f.function_name for f in a.functions()) == sorted(
            f.function_name for f in b.functions()
        )
        for cfg_a in a.functions():
            cfg_b = b.function(cfg_a.function_name)
            assert cfg_a.labels() == cfg_b.labels()

    def test_different_seeds_differ(self):
        a = SyntheticProgramGenerator(tiny_profile(seed=1)).generate()
        b = SyntheticProgramGenerator(tiny_profile(seed=2)).generate()
        sizes_a = [len(f) for f in a.functions()]
        sizes_b = [len(f) for f in b.functions()]
        assert sizes_a != sizes_b

    def test_cold_functions_never_called(self):
        program = SyntheticProgramGenerator(
            tiny_profile(n_cold_functions=3)
        ).generate()
        called = set()
        for cfg in program.functions():
            for blk in cfg:
                if blk.terminator.callee:
                    called.add(blk.terminator.callee)
                called.update(blk.terminator.callees)
        cold = {name for name in called if name.startswith("cold")}
        assert cold == set()

    def test_every_hot_function_has_a_caller(self):
        program = SyntheticProgramGenerator(
            tiny_profile(n_hot_functions=12, call_levels=3)
        ).generate()
        called = set()
        for cfg in program.functions():
            for blk in cfg:
                if blk.terminator.callee:
                    called.add(blk.terminator.callee)
                called.update(blk.terminator.callees)
        hot = {
            cfg.function_name
            for cfg in program.functions()
            if cfg.function_name.startswith("f")
        }
        level1_count = 0
        uncalled = hot - called
        # Only level-1 functions (called by main directly) are allowed to
        # be absent from non-main call sites.
        main = program.function("main")
        main_callees = {
            blk.terminator.callee for blk in main if blk.terminator.callee
        }
        assert uncalled <= main_callees


class TestWorkloads:
    def test_build_program_memoised(self):
        a = build_program("compress")
        b = build_program("compress")
        assert a is b

    def test_load_workload_trace_length(self):
        workload = load_workload("compress", n_tasks=1500)
        assert len(workload.trace) == 1500
        assert workload.name == "compress"

    def test_trace_cache_by_length(self):
        a = load_workload("compress", n_tasks=1000)
        b = load_workload("compress", n_tasks=1000)
        assert a.trace is b.trace

    def test_compiled_headers_legal_for_all_benchmarks(self):
        for name in BENCHMARK_NAMES:
            program = build_program(name).program
            for task in program.tfg:
                assert 1 <= task.n_exits <= MAX_EXITS_PER_TASK
