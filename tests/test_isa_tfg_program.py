"""Tests for the task flow graph and program containers."""

import pytest

from repro.errors import TaskFormatError
from repro.isa.controlflow import ControlFlowType
from repro.isa.program import MultiscalarProgram
from repro.isa.task import StaticTask, TaskExit, TaskHeader
from repro.isa.tfg import TaskFlowGraph


def make_task(address, targets=(), with_return=False):
    exits = [
        TaskExit(cf_type=ControlFlowType.BRANCH, target=t) for t in targets
    ]
    if with_return or not exits:
        exits.append(TaskExit(cf_type=ControlFlowType.RETURN))
    return StaticTask(address=address, header=TaskHeader(exits=tuple(exits)))


class TestTaskFlowGraph:
    def test_membership_and_lookup(self):
        tfg = TaskFlowGraph([make_task(0x100)])
        assert 0x100 in tfg
        assert tfg.task(0x100).address == 0x100
        assert 0x200 not in tfg

    def test_duplicate_address_rejected(self):
        tfg = TaskFlowGraph([make_task(0x100)])
        with pytest.raises(TaskFormatError):
            tfg.add_task(make_task(0x100))

    def test_static_arcs_from_header(self):
        tfg = TaskFlowGraph(
            [make_task(0x100, targets=(0x200,)), make_task(0x200)]
        )
        assert tfg.static_successors(0x100) == {0x200}

    def test_dynamic_arcs_union(self):
        tfg = TaskFlowGraph(
            [make_task(0x100, targets=(0x200,)), make_task(0x200)]
        )
        tfg.record_dynamic_arc(0x100, 0x300)
        assert tfg.successors(0x100) == {0x200, 0x300}
        assert tfg.static_successors(0x100) == {0x200}

    def test_dynamic_arc_from_unknown_source_rejected(self):
        tfg = TaskFlowGraph([make_task(0x100)])
        with pytest.raises(TaskFormatError):
            tfg.record_dynamic_arc(0x999, 0x100)

    def test_validate_catches_dangling_static_arc(self):
        tfg = TaskFlowGraph([make_task(0x100, targets=(0xDEAD,))])
        with pytest.raises(TaskFormatError):
            tfg.validate()

    def test_addresses_sorted(self):
        tfg = TaskFlowGraph([make_task(0x300), make_task(0x100)])
        assert tfg.addresses() == [0x100, 0x300]

    def test_unknown_lookup_raises(self):
        with pytest.raises(TaskFormatError):
            TaskFlowGraph().task(0x1)

    def test_len_and_iter(self):
        tfg = TaskFlowGraph([make_task(0x100), make_task(0x200)])
        assert len(tfg) == 2
        assert {t.address for t in tfg} == {0x100, 0x200}


class TestMultiscalarProgram:
    def test_entry_must_be_task(self):
        with pytest.raises(TaskFormatError):
            MultiscalarProgram("p", [make_task(0x100)], entry=0x999)

    def test_static_task_count(self):
        program = MultiscalarProgram(
            "p", [make_task(0x100), make_task(0x200)], entry=0x100
        )
        assert program.static_task_count == 2

    def test_exit_arity_histogram(self):
        program = MultiscalarProgram(
            "p",
            [
                make_task(0x100, targets=(0x200, 0x300), with_return=True),
                make_task(0x200),
                make_task(0x300),
            ],
            entry=0x100,
        )
        assert program.exit_arity_histogram() == {1: 2, 3: 1}

    def test_total_header_bits_positive(self):
        program = MultiscalarProgram("p", [make_task(0x100)], entry=0x100)
        assert program.total_header_bits() > 0

    def test_contains(self):
        program = MultiscalarProgram("p", [make_task(0x100)], entry=0x100)
        assert 0x100 in program
        assert 0x500 not in program
