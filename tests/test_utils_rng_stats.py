"""Tests for the deterministic RNG, stable hashing, and stats helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.hashing import mix_hash, stable_hash
from repro.utils.rng import DeterministicRng
from repro.utils.stats import CategoryTally, RateCounter


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.uniform() for _ in range(10)] == [
            b.uniform() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10**9) for _ in range(4)] != [
            b.randint(0, 10**9) for _ in range(4)
        ]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(7).fork("sub")
        b = DeterministicRng(7).fork("sub")
        assert a.seed == b.seed
        assert a.uniform() == b.uniform()

    def test_fork_labels_independent(self):
        a = DeterministicRng(7).fork("x")
        b = DeterministicRng(7).fork("y")
        assert a.seed != b.seed

    def test_weighted_choice_respects_zero_weight(self):
        rng = DeterministicRng(3)
        picks = {
            rng.weighted_choice(("a", "b"), (1.0, 0.0)) for _ in range(50)
        }
        assert picks == {"a"}

    def test_choice_covers_items(self):
        rng = DeterministicRng(5)
        picks = {rng.choice((1, 2, 3)) for _ in range(200)}
        assert picks == {1, 2, 3}

    def test_sample_geometric_bounds(self):
        rng = DeterministicRng(11)
        for _ in range(100):
            draw = rng.sample_geometric(0.5, cap=6)
            assert 1 <= draw <= 6

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(13)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items


class TestStableHash:
    def test_known_stability(self):
        # Pin a value: this must never change across releases, since cache
        # keys and generated programs depend on it.
        assert stable_hash("") == 0xCBF29CE484222325 >> 1

    def test_distinct_strings_differ(self):
        assert stable_hash("main.b1") != stable_hash("main.b2")

    def test_non_negative(self):
        for text in ("", "a", "Z" * 100):
            assert stable_hash(text) >= 0

    @given(st.text(max_size=50))
    def test_deterministic(self, text):
        assert stable_hash(text) == stable_hash(text)

    def test_mix_hash_order_sensitive(self):
        assert mix_hash(1, 2) != mix_hash(2, 1)


class TestRateCounter:
    def test_empty_rates(self):
        counter = RateCounter()
        assert counter.hit_rate == 0.0
        assert counter.miss_rate == 0.0

    def test_basic_counting(self):
        counter = RateCounter()
        for hit in (True, True, False, True):
            counter.record(hit)
        assert counter.trials == 4
        assert counter.hits == 3
        assert counter.misses == 1
        assert counter.hit_rate == pytest.approx(0.75)
        assert counter.miss_rate == pytest.approx(0.25)

    def test_merge(self):
        a = RateCounter(trials=10, hits=7)
        b = RateCounter(trials=5, hits=1)
        a.merge(b)
        assert a.trials == 15
        assert a.hits == 8

    @given(st.lists(st.booleans(), max_size=200))
    def test_rates_sum_to_one(self, outcomes):
        counter = RateCounter()
        for outcome in outcomes:
            counter.record(outcome)
        if outcomes:
            assert counter.hit_rate + counter.miss_rate == pytest.approx(1.0)


class TestCategoryTally:
    def test_distribution_sums_to_one(self):
        tally = CategoryTally()
        tally.record("a", 3)
        tally.record("b", 1)
        dist = tally.distribution()
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist["a"] == pytest.approx(0.75)

    def test_record_all(self):
        tally = CategoryTally()
        tally.record_all(["x", "y", "x"])
        assert tally.counts["x"] == 2
        assert tally.total == 3

    def test_fraction_of_missing_category(self):
        tally = CategoryTally()
        tally.record("a")
        assert tally.fraction("zzz") == 0.0

    def test_empty_distribution(self):
        assert CategoryTally().distribution() == {}
