"""Tests for tools/smoke_lint.py — CI kill-window discipline lint.

The linter guards the chaos/tune/service smoke jobs against two
regressions: SIGKILLing an unpinned victim (a fast runner finishes the
sweep before the kill lands, so the recovery assertion silently tests
nothing) and pattern kills (``pkill -f`` matching the invoking shell or
an unrelated run). The committed workflow must lint clean.
"""

from __future__ import annotations

import importlib.util
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "smoke_lint", REPO_ROOT / "tools" / "smoke_lint.py"
)
smoke_lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(smoke_lint)


GOOD_STEP = textwrap.dedent("""\
    jobs:
      smoke:
        steps:
          - name: Kill a checkpointed run mid-sweep
            run: |
              python -m repro.evalx table2 --checkpoint-dir ckpt \\
                --inject-faults 'hang(300)@xlisp' --fault-seed 7 &
              victim=$!
              sleep 5
              kill -9 "$victim" || true
              wait "$victim" || true
    """)


def _lint(text: str) -> list[str]:
    steps = smoke_lint.split_steps(text)
    problems: list[str] = []
    for name, body in steps:
        problems.extend(smoke_lint.lint_step(name, body))
    return problems


class TestSplitSteps:
    def test_steps_split_on_name_lines(self):
        text = textwrap.dedent("""\
            jobs:
              a:
                steps:
                  - name: First
                    run: echo one
                  - name: Second
                    run: echo two
            """)
        steps = smoke_lint.split_steps(text)
        assert [name for name, _ in steps] == ["First", "Second"]
        assert "echo one" in steps[0][1]
        assert "echo two" in steps[1][1]
        assert "echo two" not in steps[0][1]

    def test_quoted_names_are_unquoted(self):
        steps = smoke_lint.split_steps('  - name: "Quoted step"\n')
        assert steps[0][0] == "Quoted step"


class TestLintStep:
    def test_pinned_pid_targeted_kill_passes(self):
        assert _lint(GOOD_STEP) == []

    def test_pkill_dash_f_is_banned(self):
        problems = _lint(GOOD_STEP.replace(
            'kill -9 "$victim" || true', "pkill -f repro.evalx || true"
        ))
        assert any("pkill -f" in p for p in problems)

    def test_kill_without_hang_pin_flagged(self):
        problems = _lint(GOOD_STEP.replace(
            "--inject-faults 'hang(300)@xlisp' --fault-seed 7 ", ""
        ))
        assert any("hang(" in p for p in problems)

    def test_kill_of_non_variable_target_flagged(self):
        problems = _lint(GOOD_STEP.replace(
            'kill -9 "$victim" || true',
            "kill -9 $(pgrep -x python) || true",
        ))
        assert any("non-variable target" in p for p in problems)

    def test_kill_without_pid_capture_flagged(self):
        problems = _lint(GOOD_STEP.replace("victim=$!", "true"))
        assert any("$!" in p for p in problems)

    def test_kill_dash_kill_spelling_also_checked(self):
        problems = _lint(GOOD_STEP.replace(
            "--inject-faults 'hang(300)@xlisp' --fault-seed 7 ", ""
        ).replace('kill -9 "$victim"', 'kill -KILL "$victim"'))
        assert any("hang(" in p for p in problems)

    def test_plain_term_kill_is_not_policed(self):
        # TERM shutdowns (coordinator teardown) are orderly; only
        # SIGKILL needs the pinned-victim discipline.
        problems = _lint(textwrap.dedent("""\
            jobs:
              smoke:
                steps:
                  - name: Stop coordinator
                    run: |
                      coordinator=$!
                      kill "$coordinator" || true
            """))
        assert problems == []


class TestMain:
    def test_committed_workflow_lints_clean(self, capsys):
        workflow = REPO_ROOT / ".github" / "workflows" / "ci.yml"
        code = smoke_lint.main([str(workflow)])
        assert code == 0, capsys.readouterr().err

    def test_violating_file_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.yml"
        bad.write_text(GOOD_STEP.replace(
            'kill -9 "$victim" || true', "pkill -f repro.evalx || true"
        ))
        assert smoke_lint.main([str(bad)]) == 1
        assert "pkill -f" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path):
        assert smoke_lint.main([str(tmp_path / "nope.yml")]) == 2

    def test_no_arguments_exits_2(self):
        assert smoke_lint.main([]) == 2


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
