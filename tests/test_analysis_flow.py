"""Unit tests for the forward dataflow engine and call summaries.

The engine tests use tiny hand-rolled analyses over fixture functions:
may-join across branch arms, path-sensitive refinement on labelled
branch edges, fixpoint convergence through loops, and the guarantee
that propagation visits every reachable node even when all states are
empty. The summary tests pin the project-wide path summaries: seed
producers, wrapper transitivity, write/fsync effects on parameters, and
the environment-free ``expr_is_shared`` core.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.core import ModuleInfo, Project
from repro.analysis.dataflow import (
    Analysis,
    PathSummary,
    State,
    SummaryMap,
    expr_is_shared,
    join_states,
    run_forward,
    strip_not,
    summarize_paths,
)


def _cfg(source: str) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    fns = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    assert len(fns) == 1
    return build_cfg(fns[0])


def _project(files: dict[str, str]) -> Project:
    modules = []
    for relpath, source in files.items():
        text = textwrap.dedent(source)
        modules.append(ModuleInfo(
            path=None,  # never touched by the summarizer
            relpath=relpath,
            dotted=relpath.removesuffix(".py").replace("/", "."),
            tree=ast.parse(text),
            lines=text.splitlines(),
        ))
    return Project(modules)


class _TagAssigns(Analysis):
    """Toy may-analysis: ``x = tag()`` gives ``x`` the tag ``"tag"``."""

    def transfer(self, node_index: int, cfg: CFG, state: State) -> State:
        node = cfg.nodes[node_index]
        stmt = node.stmt
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
        ):
            out = dict(state)
            out[stmt.targets[0].id] = frozenset({stmt.value.func.id})
            return out
        return state


def _state_at(cfg: CFG, states: list[State], marker: str) -> State:
    for node in cfg.statement_nodes():
        if marker in ast.unparse(node.stmt).splitlines()[0]:
            return states[node.index]
    raise AssertionError(marker)


class TestJoin:
    def test_join_is_pointwise_union(self):
        a = {"x": frozenset({"t1"}), "y": frozenset({"t2"})}
        b = {"x": frozenset({"t3"})}
        joined = join_states(a, b)
        assert joined == {
            "x": frozenset({"t1", "t3"}),
            "y": frozenset({"t2"}),
        }
        # Inputs untouched.
        assert a["x"] == frozenset({"t1"})


class TestRunForward:
    def test_branch_arms_union_at_the_join(self):
        cfg = _cfg("""\
            def fn(flag):
                if flag:
                    x = red()
                else:
                    x = blue()
                sink(x)
            """)
        states = run_forward(cfg, _TagAssigns())
        at_sink = _state_at(cfg, states, "sink(x)")
        assert at_sink["x"] == frozenset({"red", "blue"})

    def test_strong_update_replaces_prior_tags_on_a_path(self):
        cfg = _cfg("""\
            def fn():
                x = red()
                x = blue()
                sink(x)
            """)
        states = run_forward(cfg, _TagAssigns())
        assert _state_at(cfg, states, "sink(x)")["x"] == frozenset(
            {"blue"}
        )

    def test_loop_accumulates_to_a_fixpoint(self):
        cfg = _cfg("""\
            def fn(n):
                x = red()
                while n:
                    x = blue()
                sink(x)
            """)
        states = run_forward(cfg, _TagAssigns())
        # Zero or more iterations: both tags may reach the sink.
        assert _state_at(cfg, states, "sink(x)")["x"] == frozenset(
            {"red", "blue"}
        )

    def test_empty_states_still_propagate_visits(self):
        # Regression: with no tags anywhere the join never changes, but
        # every reachable node must still get its IN state computed
        # (the engine once stalled at the entry node here).
        cfg = _cfg("""\
            def fn():
                a = 1
                if a:
                    b = 2
                sink(b)
            """)

        seen: list[int] = []

        class _Recorder(Analysis):
            def transfer(
                self, node_index: int, cfg: CFG, state: State
            ) -> State:
                seen.append(node_index)
                return state

        run_forward(cfg, _Recorder())
        reachable = {
            node.index
            for node in cfg.statement_nodes()
        }
        assert reachable <= set(seen)

    def test_refinement_sharpens_one_arm_only(self):
        cfg = _cfg("""\
            def fn(lost):
                x = tainted()
                if lost.is_set():
                    true_arm(x)
                else:
                    false_arm(x)
            """)

        class _ClearOnFalse(_TagAssigns):
            def refine(
                self, cond: ast.expr, polarity: bool, state: State
            ) -> State:
                inner, flipped = strip_not(cond)
                truthy = polarity != flipped
                if not truthy:
                    out = dict(state)
                    out.pop("x", None)
                    return out
                return state

        states = run_forward(cfg, _ClearOnFalse())
        assert _state_at(cfg, states, "true_arm(x)")["x"] == frozenset(
            {"tainted"}
        )
        assert "x" not in _state_at(cfg, states, "false_arm(x)")

    def test_refinement_sees_through_not(self):
        cfg = _cfg("""\
            def fn(lost):
                x = tainted()
                if not lost.is_set():
                    safe(x)
            """)

        class _ClearWhenNotSet(_TagAssigns):
            def refine(
                self, cond: ast.expr, polarity: bool, state: State
            ) -> State:
                inner, flipped = strip_not(cond)
                truthy = polarity != flipped
                # Ownership confirmed when is_set() is falsy.
                if not truthy:
                    out = dict(state)
                    out.pop("x", None)
                    return out
                return state

        states = run_forward(cfg, _ClearWhenNotSet())
        assert "x" not in _state_at(cfg, states, "safe(x)")


class TestStripNot:
    def test_plain_condition_is_unflipped(self):
        cond = ast.parse("x", mode="eval").body
        inner, flipped = strip_not(cond)
        assert inner is cond
        assert flipped is False

    def test_single_and_double_negation(self):
        single = ast.parse("not x", mode="eval").body
        inner, flipped = strip_not(single)
        assert isinstance(inner, ast.Name)
        assert flipped is True
        double = ast.parse("not not x", mode="eval").body
        inner, flipped = strip_not(double)
        assert isinstance(inner, ast.Name)
        assert flipped is False


class TestSummaries:
    def test_seed_producer_and_transitive_wrapper(self):
        project = _project({
            "svc/store.py": """\
                def record_path(store, cell):
                    return store.path_for(cell)

                def unrelated(store):
                    return 42
                """,
        })
        summaries = summarize_paths(project)
        assert summaries.is_producer("path_for")
        assert summaries.is_producer("record_path")
        assert not summaries.is_producer("unrelated")

    def test_write_and_fsync_effects_on_parameters(self):
        project = _project({
            "svc/io.py": """\
                import os


                def plain_write(path, text):
                    path.write_text(text)


                def durable_write(path, text):
                    with open(path, "w") as handle:
                        handle.write(text)
                        handle.flush()
                        os.fsync(handle.fileno())
                """,
        })
        summaries = summarize_paths(project)
        plain = summaries.get("plain_write")
        assert plain.writes_params == {0}
        assert plain.syncs_params == set()
        durable = summaries.get("durable_write")
        assert durable.writes_params == {0}
        assert durable.syncs_params == {0}

    def test_wrapper_inherits_callee_effects(self):
        project = _project({
            "svc/io.py": """\
                import os


                def durable_write(path, text):
                    with open(path, "w") as handle:
                        handle.write(text)
                        os.fsync(handle.fileno())


                def save_record(target, payload):
                    durable_write(target, payload)
                """,
        })
        summaries = summarize_paths(project)
        wrapper = summaries.get("save_record")
        assert wrapper.writes_params == {0}
        assert wrapper.syncs_params == {0}

    def test_self_parameter_is_skipped(self):
        project = _project({
            "svc/store.py": """\
                class Store:
                    def save(self, path, text):
                        path.write_text(text)
                """,
        })
        summaries = summarize_paths(project)
        assert summaries.get("save").writes_params == {0}

    def test_name_collisions_merge_conservatively(self):
        project = _project({
            "a.py": """\
                def save(path):
                    path.write_text("x")
                """,
            "b.py": """\
                def save(path):
                    return 1
                """,
        })
        summaries = summarize_paths(project)
        assert summaries.get("save").writes_params == {0}

    def test_path_summary_merge(self):
        a = PathSummary(returns_shared=False, writes_params={0})
        b = PathSummary(returns_shared=True, syncs_params={1})
        a.merge(b)
        assert a.returns_shared
        assert a.writes_params == {0}
        assert a.syncs_params == {1}


class TestExprIsShared:
    def _expr(self, text: str) -> ast.expr:
        return ast.parse(text, mode="eval").body

    def test_producer_calls_and_joins(self):
        summaries = SummaryMap()
        assert expr_is_shared(
            self._expr("store.path_for(cell)"), summaries
        )
        assert expr_is_shared(
            self._expr("store.directory / 'x.json'"), summaries
        )
        assert expr_is_shared(
            self._expr("store.path_for(cell).with_name('t.tmp')"),
            summaries,
        )
        assert expr_is_shared(
            self._expr("store.path_for(cell).parent"), summaries
        )

    def test_non_shared_expressions(self):
        summaries = SummaryMap()
        assert not expr_is_shared(self._expr("tmpdir / 'x'"), summaries)
        assert not expr_is_shared(self._expr("compute(cell)"), summaries)
        assert not expr_is_shared(self._expr("path"), summaries)

    def test_registered_wrapper_counts_as_producer(self):
        summaries = SummaryMap()
        summaries.add("record_path", PathSummary(returns_shared=True))
        assert expr_is_shared(
            self._expr("record_path(store, cell)"), summaries
        )


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
