"""The distributed sweep service: leases, costs, jobs, end-to-end.

Three properties anchor the suite, mirroring the engine's existing
fault-tolerance contracts:

* a job fetched from the service equals a serial ``run_sharded`` of the
  same sweep exactly (``.text`` and ``.data`` equality — the repo's
  byte-identity criterion for round-tripped results);
* a dead worker never wedges a sweep: its expired leases are stolen and
  the surviving workers finish the job;
* two tenants submitting concurrently get fair interleaving from a
  shared worker pool, not FIFO starvation.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.evalx.checkpoint import CheckpointStore, cell_fingerprint
from repro.evalx.faults import KILL_EXIT_STATUS
from repro.evalx.metrics import RunMetrics
from repro.evalx.parallel import Cell
from repro.evalx.registry import run_experiment
from repro.evalx.service import (
    Coordinator,
    CostModel,
    JobSpec,
    JobStore,
    LeaseQueue,
    Worker,
    shard_cells,
)
from repro.evalx.service import manifest as mf
from repro.evalx.service.__main__ import main as service_main
from repro.evalx.service.jobs import JobError

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Small traces keep the double (serial + service) runs cheap.
_TASKS = 3_000


def _noop() -> None:
    return None


def _queue(tmp_path, ttl=30.0, metrics=None) -> LeaseQueue:
    store = CheckpointStore(tmp_path / "store", resume=True)
    return LeaseQueue(store, ttl_seconds=ttl, metrics=metrics)


class TestLeaseQueue:
    FP = "f" * 16  # fingerprint shape is irrelevant to the queue

    def test_exclusive_acquire(self, tmp_path):
        queue = _queue(tmp_path)
        assert queue.acquire(self.FP, "gcc", "job1", "w1")
        assert queue.state(self.FP) == "leased"
        assert not queue.acquire(self.FP, "gcc", "job1", "w2")
        assert queue.read(self.FP).worker == "w1"

    def test_release_requires_ownership(self, tmp_path):
        queue = _queue(tmp_path)
        queue.acquire(self.FP, "gcc", "job1", "w1")
        queue.release(self.FP, "w2")  # non-owner: no-op
        assert queue.state(self.FP) == "leased"
        queue.release(self.FP, "w1")
        assert queue.state(self.FP) == "open"

    def test_expired_lease_is_stolen(self, tmp_path):
        dead = _queue(tmp_path, ttl=0.05)
        assert dead.acquire(self.FP, "gcc", "job1", "dead-worker")
        time.sleep(0.1)
        live = _queue(tmp_path, ttl=30.0)
        assert live.state(self.FP) == "expired"
        assert live.acquire(self.FP, "gcc", "job1", "w2")
        assert live.read(self.FP).worker == "w2"
        assert live.state(self.FP) == "leased"

    def test_renew_requires_ownership(self, tmp_path):
        queue = _queue(tmp_path, ttl=0.2)
        queue.acquire(self.FP, "gcc", "job1", "w1")
        first_expiry = queue.read(self.FP).expires_at
        time.sleep(0.02)
        assert queue.renew(self.FP, "gcc", "job1", "w1")
        assert queue.read(self.FP).expires_at > first_expiry
        assert not queue.renew(self.FP, "gcc", "job1", "w2")

    def test_record_on_disk_outranks_any_lease(self, tmp_path):
        queue = _queue(tmp_path)
        queue.store.save(self.FP, "gcc", "table2", {"v": 1})
        assert queue.state(self.FP) == "done"
        assert not queue.acquire(self.FP, "gcc", "job1", "w1")

    def test_damaged_lease_reads_as_expired(self, tmp_path):
        queue = _queue(tmp_path)
        queue.store.directory.mkdir(parents=True, exist_ok=True)
        queue.store.lease_path_for(self.FP).write_text("not json")
        assert queue.state(self.FP) == "expired"
        # ... so the cell is stolen rather than wedged forever.
        assert queue.acquire(self.FP, "gcc", "job1", "w1")
        assert queue.read(self.FP).worker == "w1"


def _metrics_file(tmp_path) -> Path:
    records = [
        {"event": "cell", "status": "ok", "experiment": "table4",
         "cell": "gcc:PATH", "wall_seconds": 9.0},
        {"event": "cell", "status": "ok", "experiment": "table4",
         "cell": "gcc:CTL-1", "wall_seconds": 3.0},
        {"event": "cell", "status": "ok", "experiment": "table4",
         "cell": "sc:PATH", "wall_seconds": 9.0},
        {"event": "cell", "status": "ok", "experiment": "table4",
         "cell": "sc:CTL-1", "wall_seconds": 3.0},
        # Failed attempts and foreign events must not skew weights.
        {"event": "cell", "status": "error", "experiment": "table4",
         "cell": "sc:PATH", "wall_seconds": 500.0},
        {"event": "lease", "action": "steal", "cell": "sc:PATH"},
    ]
    path = tmp_path / "run.jsonl"
    lines = [json.dumps(record) for record in records] + ["not json"]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


class TestCostModel:
    def test_calibration_from_metrics(self, tmp_path):
        model = CostModel.from_metrics(_metrics_file(tmp_path))
        # Overall mean wall is 6.0s: PATH (9.0s) weighs 1.5, CTL-1 0.5.
        assert model.weight("table4", "gcc:PATH") == pytest.approx(1.5)
        assert model.weight("table4", "gcc:CTL-1") == pytest.approx(0.5)
        # Uncalibrated variants and experiments degrade to weight 1.
        assert model.weight("table4", "gcc:Perfect") == 1.0
        assert model.weight("table2", "gcc:PATH") == 1.0

    def test_unreadable_calibration_is_not_fatal(self, tmp_path):
        model = CostModel.from_metrics(tmp_path / "missing.jsonl")
        assert model.weight("table4", "gcc:PATH") == 1.0

    def test_estimate_scales_with_trace_length(self):
        model = CostModel({("table4", "PATH"): 2.0})
        cell = Cell(
            label="gcc:PATH", fn=_noop, kwargs={},
            workload=("gcc", 1000),
        )
        assert model.estimate("table4", cell) == pytest.approx(2000.0)

    def test_shards_balance_and_cover(self):
        cells = [
            Cell(label=f"c{i}", fn=_noop, kwargs={},
                 workload=("gcc", tasks))
            for i, tasks in enumerate([100, 90, 50, 40, 30, 10])
        ]
        shards, total = shard_cells(cells, 3, "table2")
        assert total == pytest.approx(320.0)
        covered = sorted(i for s in shards for i in s.cell_indices)
        assert covered == list(range(len(cells)))
        # LPT keeps the makespan near the 320/3 ~ 107 ideal.
        assert max(s.estimated_cost for s in shards) <= 120
        # ... and the packing is deterministic.
        assert shard_cells(cells, 3, "table2")[0] == shards

    def test_more_shards_than_cells_collapses(self):
        cells = [
            Cell(label="only", fn=_noop, kwargs={},
                 workload=("gcc", 10))
        ]
        shards, _ = shard_cells(cells, 8, "table2")
        assert len(shards) == 1
        assert shards[0].cell_indices == (0,)


class TestJobStore:
    def test_submit_get_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.submit(
            JobSpec(experiment="table2", quick=True, tenant="alice")
        )
        assert job_id.startswith("alice-")
        record = store.get(job_id)
        assert record.state == "submitted"
        assert record.spec.experiment == "table2"
        assert record.spec.quick

    def test_fetch_gates_on_state(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.submit(JobSpec(experiment="table2"))
        with pytest.raises(JobError, match="not done"):
            store.fetch(job_id)
        store.update(store.get(job_id), state="failed", error="boom")
        with pytest.raises(JobError, match="boom"):
            store.fetch(job_id)

    def test_unknown_job(self, tmp_path):
        with pytest.raises(JobError, match="unknown"):
            JobStore(tmp_path).get("nope")

    def test_listing_filters_by_state(self, tmp_path):
        store = JobStore(tmp_path)
        ids = {
            store.submit(JobSpec(experiment="table2"))
            for _ in range(3)
        }
        listed = store.list_jobs()
        assert {record.job_id for record in listed} == ids
        store.update(listed[0], state="failed", error="x")
        assert len(store.list_jobs(state="submitted")) == 2
        assert len(store.list_jobs(state="failed")) == 1


class TestServiceEndToEnd:
    def test_job_matches_serial_run(self, tmp_path):
        serial = run_experiment("table2", n_tasks=_TASKS, quick=True)
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(
            JobSpec(experiment="table2", n_tasks=_TASKS, quick=True)
        )
        coordinator = Coordinator(tmp_path, n_shards=2)
        assert coordinator.run_once()["expanded"] == 1
        status = coordinator.status(job_id)
        assert status.state == "running"
        assert status.cells_total > 0
        served = Worker(tmp_path, worker_id="w1").serve(
            poll_seconds=0.01, idle_rounds=2
        )
        assert served == status.cells_total
        assert coordinator.run_once()["finished"] == 1
        result = jobs.fetch(job_id)
        assert result.text == serial.text
        assert result.data == serial.data
        final = coordinator.status(job_id)
        assert final.state == "done"
        assert final.cells_done == final.cells_total

    def test_unknown_experiment_fails_the_job(self, tmp_path):
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(JobSpec(experiment="nosuch"))
        Coordinator(tmp_path).run_once()
        record = jobs.get(job_id)
        assert record.state == "failed"
        assert "cannot expand" in record.error
        with pytest.raises(JobError):
            jobs.fetch(job_id)


class TestLeaseExpiryReLease:
    def test_dead_workers_cell_is_stolen_and_finished(self, tmp_path):
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(
            JobSpec(experiment="table2", n_tasks=_TASKS, quick=True)
        )
        coordinator = Coordinator(tmp_path)
        coordinator.run_once()
        first = mf.read_manifest(tmp_path, job_id).cells[0]
        # A worker leases a cell, then dies without ever heartbeating.
        dead = _queue(tmp_path, ttl=0.05)
        assert dead.acquire(
            first.fingerprint, first.label, job_id, "dead:1"
        )
        time.sleep(0.1)
        metrics_path = tmp_path / "metrics.jsonl"
        with RunMetrics(path=metrics_path) as metrics:
            Worker(
                tmp_path, worker_id="w2", metrics=metrics
            ).serve(poll_seconds=0.01, idle_rounds=2)
        coordinator.run_once()
        assert jobs.get(job_id).state == "done"
        events = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        steals = [
            event for event in events
            if event.get("event") == "lease"
            and event.get("action") == "steal"
        ]
        assert len(steals) == 1
        assert steals[0]["worker"] == "w2"
        assert steals[0]["fingerprint"] == first.fingerprint


class TestTenantFairness:
    def test_single_worker_interleaves_two_tenants(self, tmp_path):
        jobs = JobStore(tmp_path)
        job_a = jobs.submit(
            JobSpec(experiment="table2", n_tasks=2_000, quick=True,
                    tenant="alice")
        )
        time.sleep(0.01)  # distinct submitted_ts anchors the ring order
        # Different n_tasks keeps the fingerprints disjoint; identical
        # sweeps would legitimately share cells through the store.
        job_b = jobs.submit(
            JobSpec(experiment="table2", n_tasks=2_002, quick=True,
                    tenant="bob")
        )
        Coordinator(tmp_path).run_once()
        worker = Worker(tmp_path, worker_id="solo")
        order = []
        while True:
            before = dict(worker._served)
            if worker.run_once() is None:
                break
            order.append(
                next(
                    job for job, count in worker._served.items()
                    if count != before.get(job, 0)
                )
            )
        assert set(order) == {job_a, job_b}
        assert order[0] == job_a  # the older submission goes first
        # Strict alternation: the least-served running job always wins,
        # so neither tenant ever gets two consecutive cells while the
        # other still has open work.
        pairs = min(order.count(job_a), order.count(job_b))
        for i in range(2 * pairs - 1):
            assert order[i] != order[i + 1], order
        coordinator = Coordinator(tmp_path)
        coordinator.run_once()
        assert jobs.get(job_a).state == "done"
        assert jobs.get(job_b).state == "done"


class TestServiceCLI:
    def test_submit_rejects_unknown_experiment(self, tmp_path):
        assert (
            service_main(["submit", "nosuch", "--dir", str(tmp_path)])
            == 2
        )

    def test_submit_status_fetch_cycle(self, tmp_path, capsys):
        assert service_main([
            "submit", "table2", "--dir", str(tmp_path),
            "--tasks", str(_TASKS), "--quick",
        ]) == 0
        job_id = capsys.readouterr().out.strip()
        # Fetch before the job resolves fails fast with a hint.
        assert (
            service_main(["fetch", "--dir", str(tmp_path), job_id]) == 3
        )
        capsys.readouterr()
        Coordinator(tmp_path).run_once()
        Worker(tmp_path, worker_id="w").serve(
            poll_seconds=0.01, idle_rounds=2
        )
        Coordinator(tmp_path).run_once()
        assert (
            service_main(["status", "--dir", str(tmp_path), job_id])
            == 0
        )
        assert "[done]" in capsys.readouterr().out
        assert (
            service_main(["fetch", "--dir", str(tmp_path), job_id]) == 0
        )
        serial = run_experiment("table2", n_tasks=_TASKS, quick=True)
        # ``fetch`` prints the rendered report (title + body).
        assert capsys.readouterr().out.rstrip("\n") == str(serial)


@pytest.mark.slow
class TestWorkerKillMidSweep:
    """SIGKILL-equivalent death of a worker holding a live lease: the
    survivors must finish the sweep byte-identically to a serial run."""

    def test_killed_worker_sweep_completes_byte_identically(
        self, tmp_path
    ):
        serial = run_experiment("table2", n_tasks=_TASKS, quick=True)
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(
            JobSpec(experiment="table2", n_tasks=_TASKS, quick=True)
        )
        coordinator = Coordinator(tmp_path)
        coordinator.run_once()  # expand, so the chaos plan sees labels
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        victim = subprocess.run(
            [
                sys.executable, "-m", "repro.evalx.service", "worker",
                "--dir", str(tmp_path), "--worker-id", "victim",
                "--ttl", "0.5", "--poll", "0.05",
                "--inject-faults", "kill-worker@gcc",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert victim.returncode == KILL_EXIT_STATUS, victim.stderr
        # The victim died holding a live lease on the gcc cell.
        leased = CheckpointStore(tmp_path / "store", resume=True).leases()
        assert leased, "victim should have died mid-lease"
        time.sleep(0.6)  # let the orphaned lease expire
        Worker(tmp_path, worker_id="survivor").serve(
            poll_seconds=0.05, idle_rounds=3
        )
        coordinator.run_once()
        assert jobs.get(job_id).state == "done"
        result = jobs.fetch(job_id)
        assert result.text == serial.text
        assert result.data == serial.data


class TestLeaseExpiryBoundary:
    """`Lease.expired` pinned at the exact boundary, plus TTL validation."""

    FP = "f" * 16

    def test_lease_is_stealable_at_exactly_expires_at(self, tmp_path):
        queue = _queue(tmp_path, ttl=5.0)
        assert queue.acquire(self.FP, "gcc", "job1", "w1")
        lease = queue.read(self.FP)
        assert not lease.expired(now=lease.expires_at - 1e-6)
        # At the boundary instant the TTL has fully elapsed: a lease of
        # t seconds never protects a claim for longer than t.
        assert lease.expired(now=lease.expires_at)
        assert lease.expired(now=lease.expires_at + 1e-6)

    def test_non_positive_ttl_rejected_at_construction(self, tmp_path):
        store = CheckpointStore(tmp_path / "store", resume=True)
        for ttl in (0.0, -1.0):
            with pytest.raises(ValueError, match="ttl_seconds"):
                LeaseQueue(store, ttl_seconds=ttl)


class TestCostModelFallbacks:
    """Calibration degradation is loud, and blind lookups are counted."""

    def test_all_zero_wall_times_fall_back_to_uniform(self, tmp_path):
        records = [
            {"event": "cell", "status": "ok", "experiment": "table4",
             "cell": "gcc:PATH", "wall_seconds": 0.0},
            {"event": "cell", "status": "ok", "experiment": "table4",
             "cell": "gcc:CTL-1", "wall_seconds": 0.0},
        ]
        path = tmp_path / "zero.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n",
            encoding="utf-8",
        )
        with pytest.warns(RuntimeWarning, match="uniform"):
            model = CostModel.from_metrics(path)
        # The variants stay *known*, at an explicit uniform weight ...
        assert model.weights[("table4", "PATH")] == 1.0
        assert model.weights[("table4", "CTL-1")] == 1.0
        # ... so looking them up is not an unknown-variant miss.
        assert model.weight("table4", "gcc:PATH") == 1.0
        assert model.unknown_variant_misses == 0

    def test_unknown_variant_lookups_are_counted(self):
        model = CostModel({("table4", "PATH"): 2.0})
        assert model.weight("table4", "gcc:PATH") == 2.0
        assert model.unknown_variant_misses == 0
        assert model.weight("table4", "gcc:Perfect") == 1.0
        assert model.weight("table2", "gcc:PATH") == 1.0
        assert model.unknown_variant_misses == 2


class TestShardCellsProperties:
    """Property-style guarantees of the LPT packing."""

    @staticmethod
    def _uniform_cells(n, tasks=50):
        return [
            Cell(label=f"c{i}:X", fn=_noop, kwargs={},
                 workload=("gcc", tasks))
            for i in range(n)
        ]

    def test_equal_cost_ties_pack_deterministically(self):
        cells = self._uniform_cells(13)
        first = shard_cells(cells, 4, "table2")
        for _ in range(5):
            assert shard_cells(cells, 4, "table2") == first

    def test_equal_cost_max_min_load_ratio_bounded(self):
        for n, m in [(12, 4), (13, 4), (7, 3), (16, 5), (5, 5)]:
            shards, total = shard_cells(
                self._uniform_cells(n), m, "table2"
            )
            loads = [s.estimated_cost for s in shards]
            # Equal costs spread ceil/floor: never more than 2x apart.
            assert max(loads) / min(loads) <= 2.0
            assert sum(loads) == pytest.approx(total)

    def test_lpt_makespan_bound_holds_for_skewed_costs(self):
        tasks = [970, 130, 130, 640, 25, 25, 25, 410, 3, 888]
        cells = [
            Cell(label=f"c{i}:X", fn=_noop, kwargs={},
                 workload=("gcc", t))
            for i, t in enumerate(tasks)
        ]
        shards, total = shard_cells(cells, 4, "table2")
        # Greedy-LPT guarantee: makespan <= mean load + one max cell.
        assert max(s.estimated_cost for s in shards) <= (
            total / len(shards) + max(tasks)
        )


class _AlwaysFailRenewQueue(LeaseQueue):
    """A queue whose heartbeat renewals always fail (ENOSPC stand-in)."""

    def renew(self, fingerprint, label, job, worker):
        return False


def _slow_cell(seconds: float) -> dict:
    time.sleep(seconds)
    return {"ok": True}


class TestWorkerAbandonsLostLease:
    """Repeated renewal failure must end in abandonment, not publication.

    Before the fix the heartbeat thread swallowed renewal failures and
    the worker published anyway — while the silently expired lease let
    another worker re-lease the same cell and publish too.
    """

    def test_renew_failures_abandon_the_cell(self, tmp_path):
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(JobSpec(experiment="table2"))
        record = jobs.get(job_id)
        cell = Cell(
            label="gcc:SLOW",
            fn=_slow_cell,
            kwargs={"seconds": 0.6},
            workload=("gcc", 100),
        )
        fingerprint = cell_fingerprint("table2", cell)
        shards, _ = shard_cells([cell], 1, "table2")
        mf.write_manifest(
            tmp_path, job_id, "table2", [cell], [fingerprint],
            [100.0], shards,
        )
        jobs.update(record, state="running", cells_total=1, shards=1)
        metrics_path = tmp_path / "worker.jsonl"
        with RunMetrics(path=metrics_path) as metrics:
            worker = Worker(
                tmp_path,
                worker_id="w1",
                ttl_seconds=0.15,
                metrics=metrics,
            )
            worker.queue = _AlwaysFailRenewQueue(
                worker.store, ttl_seconds=0.15, metrics=metrics
            )
            label = worker.run_once()
        assert label == "gcc:SLOW"
        # Nothing was published: no checkpoint record, no fail marker.
        assert not worker.store.has(fingerprint)
        assert fingerprint not in mf.failed_fingerprints(
            tmp_path, job_id
        )
        events = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        actions = [
            event["action"]
            for event in events
            if event.get("event") == "lease"
        ]
        assert "abandoned" in actions
        assert "completed" not in actions
        assert "failed" not in actions
