"""The distributed sweep service: leases, costs, jobs, end-to-end.

Three properties anchor the suite, mirroring the engine's existing
fault-tolerance contracts:

* a job fetched from the service equals a serial ``run_sharded`` of the
  same sweep exactly (``.text`` and ``.data`` equality — the repo's
  byte-identity criterion for round-tripped results);
* a dead worker never wedges a sweep: its expired leases are stolen and
  the surviving workers finish the job;
* two tenants submitting concurrently get fair interleaving from a
  shared worker pool, not FIFO starvation.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.evalx.checkpoint import CheckpointStore, cell_fingerprint
from repro.evalx.faults import KILL_EXIT_STATUS
from repro.evalx.metrics import RunMetrics
from repro.evalx.parallel import Cell, CellFailure
from repro.evalx.registry import run_experiment
from repro.evalx.service import (
    Coordinator,
    CostModel,
    JobSpec,
    JobStore,
    LeaseQueue,
    Worker,
    shard_cells,
)
from repro.evalx.service import manifest as mf
from repro.evalx.service.__main__ import main as service_main
from repro.evalx.service.jobs import JobError

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Small traces keep the double (serial + service) runs cheap.
_TASKS = 3_000


def _noop() -> None:
    return None


def _queue(tmp_path, ttl=30.0, metrics=None) -> LeaseQueue:
    store = CheckpointStore(tmp_path / "store", resume=True)
    return LeaseQueue(store, ttl_seconds=ttl, metrics=metrics)


class TestLeaseQueue:
    FP = "f" * 16  # fingerprint shape is irrelevant to the queue

    def test_exclusive_acquire(self, tmp_path):
        queue = _queue(tmp_path)
        assert queue.acquire(self.FP, "gcc", "job1", "w1")
        assert queue.state(self.FP) == "leased"
        assert not queue.acquire(self.FP, "gcc", "job1", "w2")
        assert queue.read(self.FP).worker == "w1"

    def test_release_requires_ownership(self, tmp_path):
        queue = _queue(tmp_path)
        queue.acquire(self.FP, "gcc", "job1", "w1")
        queue.release(self.FP, "w2")  # non-owner: no-op
        assert queue.state(self.FP) == "leased"
        queue.release(self.FP, "w1")
        assert queue.state(self.FP) == "open"

    def test_expired_lease_is_stolen(self, tmp_path):
        dead = _queue(tmp_path, ttl=0.05)
        assert dead.acquire(self.FP, "gcc", "job1", "dead-worker")
        time.sleep(0.1)
        live = _queue(tmp_path, ttl=30.0)
        assert live.state(self.FP) == "expired"
        assert live.acquire(self.FP, "gcc", "job1", "w2")
        assert live.read(self.FP).worker == "w2"
        assert live.state(self.FP) == "leased"

    def test_renew_requires_ownership(self, tmp_path):
        queue = _queue(tmp_path, ttl=0.2)
        queue.acquire(self.FP, "gcc", "job1", "w1")
        first_expiry = queue.read(self.FP).expires_at
        time.sleep(0.02)
        assert queue.renew(self.FP, "gcc", "job1", "w1")
        assert queue.read(self.FP).expires_at > first_expiry
        assert not queue.renew(self.FP, "gcc", "job1", "w2")

    def test_record_on_disk_outranks_any_lease(self, tmp_path):
        queue = _queue(tmp_path)
        queue.store.save(self.FP, "gcc", "table2", {"v": 1})
        assert queue.state(self.FP) == "done"
        assert not queue.acquire(self.FP, "gcc", "job1", "w1")

    def test_damaged_lease_reads_as_expired(self, tmp_path):
        queue = _queue(tmp_path)
        queue.store.directory.mkdir(parents=True, exist_ok=True)
        queue.store.lease_path_for(self.FP).write_text("not json")
        assert queue.state(self.FP) == "expired"
        # ... so the cell is stolen rather than wedged forever.
        assert queue.acquire(self.FP, "gcc", "job1", "w1")
        assert queue.read(self.FP).worker == "w1"


def _metrics_file(tmp_path) -> Path:
    records = [
        {"event": "cell", "status": "ok", "experiment": "table4",
         "cell": "gcc:PATH", "wall_seconds": 9.0},
        {"event": "cell", "status": "ok", "experiment": "table4",
         "cell": "gcc:CTL-1", "wall_seconds": 3.0},
        {"event": "cell", "status": "ok", "experiment": "table4",
         "cell": "sc:PATH", "wall_seconds": 9.0},
        {"event": "cell", "status": "ok", "experiment": "table4",
         "cell": "sc:CTL-1", "wall_seconds": 3.0},
        # Failed attempts and foreign events must not skew weights.
        {"event": "cell", "status": "error", "experiment": "table4",
         "cell": "sc:PATH", "wall_seconds": 500.0},
        {"event": "lease", "action": "steal", "cell": "sc:PATH"},
    ]
    path = tmp_path / "run.jsonl"
    lines = [json.dumps(record) for record in records] + ["not json"]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


class TestCostModel:
    def test_calibration_from_metrics(self, tmp_path):
        model = CostModel.from_metrics(_metrics_file(tmp_path))
        # Overall mean wall is 6.0s: PATH (9.0s) weighs 1.5, CTL-1 0.5.
        assert model.weight("table4", "gcc:PATH") == pytest.approx(1.5)
        assert model.weight("table4", "gcc:CTL-1") == pytest.approx(0.5)
        # Uncalibrated variants and experiments degrade to weight 1.
        assert model.weight("table4", "gcc:Perfect") == 1.0
        assert model.weight("table2", "gcc:PATH") == 1.0

    def test_unreadable_calibration_is_not_fatal(self, tmp_path):
        model = CostModel.from_metrics(tmp_path / "missing.jsonl")
        assert model.weight("table4", "gcc:PATH") == 1.0

    def test_estimate_scales_with_trace_length(self):
        model = CostModel({("table4", "PATH"): 2.0})
        cell = Cell(
            label="gcc:PATH", fn=_noop, kwargs={},
            workload=("gcc", 1000),
        )
        assert model.estimate("table4", cell) == pytest.approx(2000.0)

    def test_shards_balance_and_cover(self):
        cells = [
            Cell(label=f"c{i}", fn=_noop, kwargs={},
                 workload=("gcc", tasks))
            for i, tasks in enumerate([100, 90, 50, 40, 30, 10])
        ]
        shards, total = shard_cells(cells, 3, "table2")
        assert total == pytest.approx(320.0)
        covered = sorted(i for s in shards for i in s.cell_indices)
        assert covered == list(range(len(cells)))
        # LPT keeps the makespan near the 320/3 ~ 107 ideal.
        assert max(s.estimated_cost for s in shards) <= 120
        # ... and the packing is deterministic.
        assert shard_cells(cells, 3, "table2")[0] == shards

    def test_more_shards_than_cells_collapses(self):
        cells = [
            Cell(label="only", fn=_noop, kwargs={},
                 workload=("gcc", 10))
        ]
        shards, _ = shard_cells(cells, 8, "table2")
        assert len(shards) == 1
        assert shards[0].cell_indices == (0,)


class TestJobStore:
    def test_submit_get_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.submit(
            JobSpec(experiment="table2", quick=True, tenant="alice")
        )
        assert job_id.startswith("alice-")
        record = store.get(job_id)
        assert record.state == "submitted"
        assert record.spec.experiment == "table2"
        assert record.spec.quick

    def test_fetch_gates_on_state(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.submit(JobSpec(experiment="table2"))
        with pytest.raises(JobError, match="not done"):
            store.fetch(job_id)
        store.update(store.get(job_id), state="failed", error="boom")
        with pytest.raises(JobError, match="boom"):
            store.fetch(job_id)

    def test_unknown_job(self, tmp_path):
        with pytest.raises(JobError, match="unknown"):
            JobStore(tmp_path).get("nope")

    def test_listing_filters_by_state(self, tmp_path):
        store = JobStore(tmp_path)
        ids = {
            store.submit(JobSpec(experiment="table2"))
            for _ in range(3)
        }
        listed = store.list_jobs()
        assert {record.job_id for record in listed} == ids
        store.update(listed[0], state="failed", error="x")
        assert len(store.list_jobs(state="submitted")) == 2
        assert len(store.list_jobs(state="failed")) == 1


class TestServiceEndToEnd:
    def test_job_matches_serial_run(self, tmp_path):
        serial = run_experiment("table2", n_tasks=_TASKS, quick=True)
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(
            JobSpec(experiment="table2", n_tasks=_TASKS, quick=True)
        )
        coordinator = Coordinator(tmp_path, n_shards=2)
        assert coordinator.run_once()["expanded"] == 1
        status = coordinator.status(job_id)
        assert status.state == "running"
        assert status.cells_total > 0
        served = Worker(tmp_path, worker_id="w1").serve(
            poll_seconds=0.01, idle_rounds=2
        )
        assert served == status.cells_total
        assert coordinator.run_once()["finished"] == 1
        result = jobs.fetch(job_id)
        assert result.text == serial.text
        assert result.data == serial.data
        final = coordinator.status(job_id)
        assert final.state == "done"
        assert final.cells_done == final.cells_total

    def test_unknown_experiment_fails_the_job(self, tmp_path):
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(JobSpec(experiment="nosuch"))
        Coordinator(tmp_path).run_once()
        record = jobs.get(job_id)
        assert record.state == "failed"
        assert "cannot expand" in record.error
        with pytest.raises(JobError):
            jobs.fetch(job_id)


class TestLeaseExpiryReLease:
    def test_dead_workers_cell_is_stolen_and_finished(self, tmp_path):
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(
            JobSpec(experiment="table2", n_tasks=_TASKS, quick=True)
        )
        coordinator = Coordinator(tmp_path)
        coordinator.run_once()
        first = mf.read_manifest(tmp_path, job_id).cells[0]
        # A worker leases a cell, then dies without ever heartbeating.
        dead = _queue(tmp_path, ttl=0.05)
        assert dead.acquire(
            first.fingerprint, first.label, job_id, "dead:1"
        )
        time.sleep(0.1)
        metrics_path = tmp_path / "metrics.jsonl"
        with RunMetrics(path=metrics_path) as metrics:
            Worker(
                tmp_path, worker_id="w2", metrics=metrics
            ).serve(poll_seconds=0.01, idle_rounds=2)
        coordinator.run_once()
        assert jobs.get(job_id).state == "done"
        events = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        steals = [
            event for event in events
            if event.get("event") == "lease"
            and event.get("action") == "steal"
        ]
        assert len(steals) == 1
        assert steals[0]["worker"] == "w2"
        assert steals[0]["fingerprint"] == first.fingerprint


class TestTenantFairness:
    def test_single_worker_interleaves_two_tenants(self, tmp_path):
        jobs = JobStore(tmp_path)
        job_a = jobs.submit(
            JobSpec(experiment="table2", n_tasks=2_000, quick=True,
                    tenant="alice")
        )
        time.sleep(0.01)  # distinct submitted_ts anchors the ring order
        # Different n_tasks keeps the fingerprints disjoint; identical
        # sweeps would legitimately share cells through the store.
        job_b = jobs.submit(
            JobSpec(experiment="table2", n_tasks=2_002, quick=True,
                    tenant="bob")
        )
        Coordinator(tmp_path).run_once()
        worker = Worker(tmp_path, worker_id="solo")
        order = []
        while True:
            before = dict(worker._served)
            if worker.run_once() is None:
                break
            order.append(
                next(
                    job for job, count in worker._served.items()
                    if count != before.get(job, 0)
                )
            )
        assert set(order) == {job_a, job_b}
        assert order[0] == job_a  # the older submission goes first
        # Strict alternation: the least-served running job always wins,
        # so neither tenant ever gets two consecutive cells while the
        # other still has open work.
        pairs = min(order.count(job_a), order.count(job_b))
        for i in range(2 * pairs - 1):
            assert order[i] != order[i + 1], order
        coordinator = Coordinator(tmp_path)
        coordinator.run_once()
        assert jobs.get(job_a).state == "done"
        assert jobs.get(job_b).state == "done"


class TestServiceCLI:
    def test_submit_rejects_unknown_experiment(self, tmp_path):
        assert (
            service_main(["submit", "nosuch", "--dir", str(tmp_path)])
            == 2
        )

    def test_submit_status_fetch_cycle(self, tmp_path, capsys):
        assert service_main([
            "submit", "table2", "--dir", str(tmp_path),
            "--tasks", str(_TASKS), "--quick",
        ]) == 0
        job_id = capsys.readouterr().out.strip()
        # Fetch before the job resolves fails fast with a hint.
        assert (
            service_main(["fetch", "--dir", str(tmp_path), job_id]) == 3
        )
        capsys.readouterr()
        Coordinator(tmp_path).run_once()
        Worker(tmp_path, worker_id="w").serve(
            poll_seconds=0.01, idle_rounds=2
        )
        Coordinator(tmp_path).run_once()
        assert (
            service_main(["status", "--dir", str(tmp_path), job_id])
            == 0
        )
        assert "[done]" in capsys.readouterr().out
        assert (
            service_main(["fetch", "--dir", str(tmp_path), job_id]) == 0
        )
        serial = run_experiment("table2", n_tasks=_TASKS, quick=True)
        # ``fetch`` prints the rendered report (title + body).
        assert capsys.readouterr().out.rstrip("\n") == str(serial)


@pytest.mark.slow
class TestWorkerKillMidSweep:
    """SIGKILL-equivalent death of a worker holding a live lease: the
    survivors must finish the sweep byte-identically to a serial run."""

    def test_killed_worker_sweep_completes_byte_identically(
        self, tmp_path
    ):
        serial = run_experiment("table2", n_tasks=_TASKS, quick=True)
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(
            JobSpec(experiment="table2", n_tasks=_TASKS, quick=True)
        )
        coordinator = Coordinator(tmp_path)
        coordinator.run_once()  # expand, so the chaos plan sees labels
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        victim = subprocess.run(
            [
                sys.executable, "-m", "repro.evalx.service", "worker",
                "--dir", str(tmp_path), "--worker-id", "victim",
                "--ttl", "0.5", "--poll", "0.05",
                "--inject-faults", "kill-worker@gcc",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert victim.returncode == KILL_EXIT_STATUS, victim.stderr
        # The victim died holding a live lease on the gcc cell.
        leased = CheckpointStore(tmp_path / "store", resume=True).leases()
        assert leased, "victim should have died mid-lease"
        time.sleep(0.6)  # let the orphaned lease expire
        Worker(tmp_path, worker_id="survivor").serve(
            poll_seconds=0.05, idle_rounds=3
        )
        coordinator.run_once()
        assert jobs.get(job_id).state == "done"
        result = jobs.fetch(job_id)
        assert result.text == serial.text
        assert result.data == serial.data


class TestLeaseExpiryBoundary:
    """`Lease.expired` pinned at the exact boundary, plus TTL validation."""

    FP = "f" * 16

    def test_lease_is_stealable_at_exactly_expires_at(self, tmp_path):
        queue = _queue(tmp_path, ttl=5.0)
        assert queue.acquire(self.FP, "gcc", "job1", "w1")
        lease = queue.read(self.FP)
        assert not lease.expired(now=lease.expires_at - 1e-6)
        # At the boundary instant the TTL has fully elapsed: a lease of
        # t seconds never protects a claim for longer than t.
        assert lease.expired(now=lease.expires_at)
        assert lease.expired(now=lease.expires_at + 1e-6)

    def test_non_positive_ttl_rejected_at_construction(self, tmp_path):
        store = CheckpointStore(tmp_path / "store", resume=True)
        for ttl in (0.0, -1.0):
            with pytest.raises(ValueError, match="ttl_seconds"):
                LeaseQueue(store, ttl_seconds=ttl)


class TestCostModelFallbacks:
    """Calibration degradation is loud, and blind lookups are counted."""

    def test_all_zero_wall_times_fall_back_to_uniform(self, tmp_path):
        records = [
            {"event": "cell", "status": "ok", "experiment": "table4",
             "cell": "gcc:PATH", "wall_seconds": 0.0},
            {"event": "cell", "status": "ok", "experiment": "table4",
             "cell": "gcc:CTL-1", "wall_seconds": 0.0},
        ]
        path = tmp_path / "zero.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n",
            encoding="utf-8",
        )
        with pytest.warns(RuntimeWarning, match="uniform"):
            model = CostModel.from_metrics(path)
        # The variants stay *known*, at an explicit uniform weight ...
        assert model.weights[("table4", "PATH")] == 1.0
        assert model.weights[("table4", "CTL-1")] == 1.0
        # ... so looking them up is not an unknown-variant miss.
        assert model.weight("table4", "gcc:PATH") == 1.0
        assert model.unknown_variant_misses == 0

    def test_unknown_variant_lookups_are_counted(self):
        model = CostModel({("table4", "PATH"): 2.0})
        assert model.weight("table4", "gcc:PATH") == 2.0
        assert model.unknown_variant_misses == 0
        assert model.weight("table4", "gcc:Perfect") == 1.0
        assert model.weight("table2", "gcc:PATH") == 1.0
        assert model.unknown_variant_misses == 2


class TestShardCellsProperties:
    """Property-style guarantees of the LPT packing."""

    @staticmethod
    def _uniform_cells(n, tasks=50):
        return [
            Cell(label=f"c{i}:X", fn=_noop, kwargs={},
                 workload=("gcc", tasks))
            for i in range(n)
        ]

    def test_equal_cost_ties_pack_deterministically(self):
        cells = self._uniform_cells(13)
        first = shard_cells(cells, 4, "table2")
        for _ in range(5):
            assert shard_cells(cells, 4, "table2") == first

    def test_equal_cost_max_min_load_ratio_bounded(self):
        for n, m in [(12, 4), (13, 4), (7, 3), (16, 5), (5, 5)]:
            shards, total = shard_cells(
                self._uniform_cells(n), m, "table2"
            )
            loads = [s.estimated_cost for s in shards]
            # Equal costs spread ceil/floor: never more than 2x apart.
            assert max(loads) / min(loads) <= 2.0
            assert sum(loads) == pytest.approx(total)

    def test_lpt_makespan_bound_holds_for_skewed_costs(self):
        tasks = [970, 130, 130, 640, 25, 25, 25, 410, 3, 888]
        cells = [
            Cell(label=f"c{i}:X", fn=_noop, kwargs={},
                 workload=("gcc", t))
            for i, t in enumerate(tasks)
        ]
        shards, total = shard_cells(cells, 4, "table2")
        # Greedy-LPT guarantee: makespan <= mean load + one max cell.
        assert max(s.estimated_cost for s in shards) <= (
            total / len(shards) + max(tasks)
        )


class _AlwaysFailRenewQueue(LeaseQueue):
    """A queue whose heartbeat renewals always fail (ENOSPC stand-in)."""

    def renew(self, fingerprint, label, job, worker):
        return False


def _slow_cell(seconds: float) -> dict:
    time.sleep(seconds)
    return {"ok": True}


class TestWorkerAbandonsLostLease:
    """Repeated renewal failure must end in abandonment, not publication.

    Before the fix the heartbeat thread swallowed renewal failures and
    the worker published anyway — while the silently expired lease let
    another worker re-lease the same cell and publish too.
    """

    def test_renew_failures_abandon_the_cell(self, tmp_path):
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(JobSpec(experiment="table2"))
        record = jobs.get(job_id)
        cell = Cell(
            label="gcc:SLOW",
            fn=_slow_cell,
            kwargs={"seconds": 0.6},
            workload=("gcc", 100),
        )
        fingerprint = cell_fingerprint("table2", cell)
        shards, _ = shard_cells([cell], 1, "table2")
        mf.write_manifest(
            tmp_path, job_id, "table2", [cell], [fingerprint],
            [100.0], shards,
        )
        jobs.update(record, state="running", cells_total=1, shards=1)
        metrics_path = tmp_path / "worker.jsonl"
        with RunMetrics(path=metrics_path) as metrics:
            worker = Worker(
                tmp_path,
                worker_id="w1",
                ttl_seconds=0.15,
                metrics=metrics,
            )
            worker.queue = _AlwaysFailRenewQueue(
                worker.store, ttl_seconds=0.15, metrics=metrics
            )
            label = worker.run_once()
        assert label == "gcc:SLOW"
        # Nothing was published: no checkpoint record, no fail marker.
        assert not worker.store.has(fingerprint)
        assert fingerprint not in mf.failed_fingerprints(
            tmp_path, job_id
        )
        events = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        actions = [
            event["action"]
            for event in events
            if event.get("event") == "lease"
        ]
        assert "abandoned" in actions
        assert "completed" not in actions
        assert "failed" not in actions


class TestLeaseAttemptCounter:
    """The cross-steal attempt counter: 1 fresh, +1 per steal, kept by
    renewals, reset by damage."""

    FP = "f" * 16

    def test_fresh_acquire_is_attempt_one(self, tmp_path):
        queue = _queue(tmp_path)
        lease = queue.acquire(self.FP, "gcc", "job1", "w1")
        assert lease.attempt == 1

    def test_steal_chain_increments_attempt(self, tmp_path):
        dead = _queue(tmp_path, ttl=0.05)
        assert dead.acquire(self.FP, "gcc", "job1", "wA").attempt == 1
        time.sleep(0.1)
        stolen = dead.acquire(self.FP, "gcc", "job1", "wB")
        assert stolen.attempt == 2
        time.sleep(0.1)
        assert dead.acquire(self.FP, "gcc", "job1", "wC").attempt == 3

    def test_renew_preserves_attempt(self, tmp_path):
        dead = _queue(tmp_path, ttl=0.05)
        dead.acquire(self.FP, "gcc", "job1", "wA")
        time.sleep(0.1)
        live = _queue(tmp_path, ttl=30.0)
        assert live.acquire(self.FP, "gcc", "job1", "wB").attempt == 2
        assert live.renew(self.FP, "gcc", "job1", "wB")
        assert live.read(self.FP).attempt == 2

    def test_damaged_lease_restarts_the_count(self, tmp_path):
        queue = _queue(tmp_path)
        queue.store.directory.mkdir(parents=True, exist_ok=True)
        queue.store.lease_path_for(self.FP).write_text("not json")
        assert queue.read(self.FP).attempt == 0
        # The steal of a damaged claim starts over at generation 1.
        assert queue.acquire(self.FP, "gcc", "job1", "w1").attempt == 1


class TestQuarantine:
    """A cell whose workers keep dying is finalised, not re-leased."""

    def _expanded_job(self, tmp_path, **spec):
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(
            JobSpec(
                experiment="table2", n_tasks=_TASKS, quick=True, **spec
            )
        )
        Coordinator(tmp_path).run_once()
        return jobs, job_id, mf.read_manifest(tmp_path, job_id)

    def test_attempt_counter_survives_a_steal_chain(self, tmp_path):
        """A killed, B stole and was killed, C must quarantine — the
        counter travels across workers, not within one."""
        jobs, job_id, manifest = self._expanded_job(
            tmp_path, keep_going=True
        )
        target = next(e for e in manifest.cells if e.label == "gcc")
        dead = _queue(tmp_path, ttl=0.05)
        assert dead.acquire(
            target.fingerprint, target.label, job_id, "wA"
        ).attempt == 1
        time.sleep(0.1)
        assert dead.acquire(
            target.fingerprint, target.label, job_id, "wB"
        ).attempt == 2
        time.sleep(0.1)
        metrics_path = tmp_path / "metrics.jsonl"
        with RunMetrics(path=metrics_path) as metrics:
            Worker(
                tmp_path,
                worker_id="wC",
                metrics=metrics,
                max_lease_attempts=2,
            ).serve(poll_seconds=0.01, idle_rounds=2)
        failure = mf.read_fail(tmp_path, job_id, target.fingerprint)
        assert failure is not None
        assert failure.kind == mf.QUARANTINED
        assert failure.attempts == 2
        # The dead lease was cleared alongside the marker.
        assert _queue(tmp_path).read(target.fingerprint) is None
        events = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        quarantined = [
            e for e in events
            if e.get("event") == "lease"
            and e.get("action") == "quarantined"
        ]
        assert len(quarantined) == 1
        assert quarantined[0]["fingerprint"] == target.fingerprint
        # keep_going finalisation turns the marker into a typed gap.
        Coordinator(tmp_path).run_once()
        result = jobs.fetch(job_id)
        assert result.data["_failed_cells"] == ["gcc"]
        assert result.failures[0].kind == mf.QUARANTINED

    def test_below_threshold_expiry_is_stolen_not_quarantined(
        self, tmp_path
    ):
        jobs, job_id, manifest = self._expanded_job(tmp_path)
        target = manifest.cells[0]
        dead = _queue(tmp_path, ttl=0.05)
        dead.acquire(target.fingerprint, target.label, job_id, "wA")
        time.sleep(0.1)
        Worker(tmp_path, worker_id="wB").serve(
            poll_seconds=0.01, idle_rounds=2
        )
        assert mf.read_fail(
            tmp_path, job_id, target.fingerprint
        ) is None
        Coordinator(tmp_path).run_once()
        assert jobs.get(job_id).state == "done"

    def test_claim_pass_never_rescans_the_fails_directory(
        self, tmp_path, monkeypatch
    ):
        """Quarantined/failed fingerprints are skipped via the per-job
        memo + a single marker stat, not a directory glob per claim."""
        jobs, job_id, manifest = self._expanded_job(
            tmp_path, keep_going=True
        )
        target = manifest.cells[0]
        assert mf.write_fail(
            tmp_path,
            job_id,
            target.fingerprint,
            CellFailure(
                label=target.label, kind="error", error="pre-failed",
                attempts=1, wall_seconds=0.0,
            ),
        )

        def _no_rescans(*args, **kwargs):
            raise AssertionError(
                "Worker._claim must not glob failed_fingerprints"
            )

        monkeypatch.setattr(
            mf, "failed_fingerprints", _no_rescans
        )
        worker = Worker(tmp_path, worker_id="w1")
        served = worker.serve(poll_seconds=0.01, idle_rounds=2)
        monkeypatch.undo()
        # Every open cell ran; the pre-failed one was skipped via memo.
        assert served == len(manifest.cells) - 1
        assert target.fingerprint in worker._failed[job_id]
        Coordinator(tmp_path).run_once()
        assert jobs.get(job_id).state == "done"


def _hijacked_cell(root: str, label: str) -> dict:
    """A cell that simulates a thief winning mid-run: the zombie's
    lease is replaced and the thief's record published while the
    original owner is still executing. The cell discovers its own
    fingerprint from the one live lease (its fingerprint cannot appear
    in its kwargs — the fingerprint is computed over them)."""
    store = CheckpointStore(Path(root) / "store", resume=True)
    (fingerprint,) = store.leases()
    thief_queue = LeaseQueue(store, ttl_seconds=30.0)
    store.lease_path_for(fingerprint).unlink()
    assert thief_queue.acquire(fingerprint, label, "job", "thief")
    store.save(fingerprint, label, "table2", {"winner": "thief"})
    return {"winner": "zombie"}


class TestZombiePublishGuard:
    """A worker that lost its lease mid-cell must not overwrite the
    thief's publication (the regression window: the zombie wakes before
    its heartbeat accumulates enough failures to flag the loss)."""

    def test_zombie_cannot_overwrite_thiefs_record(self, tmp_path):
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(JobSpec(experiment="table2"))
        record = jobs.get(job_id)
        cell = Cell(
            label="gcc:HIJACK",
            fn=_hijacked_cell,
            kwargs={"root": str(tmp_path), "label": "gcc:HIJACK"},
            workload=("gcc", 100),
        )
        fingerprint = cell_fingerprint("table2", cell)
        shards, _ = shard_cells([cell], 1, "table2")
        mf.write_manifest(
            tmp_path, job_id, "table2", [cell], [fingerprint],
            [100.0], shards,
        )
        jobs.update(record, state="running", cells_total=1, shards=1)
        metrics_path = tmp_path / "zombie.jsonl"
        with RunMetrics(path=metrics_path) as metrics:
            label = Worker(
                tmp_path, worker_id="zombie", metrics=metrics
            ).run_once()
        assert label == "gcc:HIJACK"
        store = CheckpointStore(tmp_path / "store", resume=True)
        loaded = store.load(fingerprint, "gcc:HIJACK")
        assert loaded.payload == {"winner": "thief"}
        events = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        actions = [
            e["action"] for e in events if e.get("event") == "lease"
        ]
        assert "abandoned" in actions
        assert "completed" not in actions

    def test_fail_marker_is_first_writer_wins(self, tmp_path):
        failure = CellFailure(
            label="gcc", kind="error", error="first", attempts=1,
            wall_seconds=0.0,
        )
        assert mf.write_fail(tmp_path, "job1", "f" * 16, failure)
        second = CellFailure(
            label="gcc", kind="error", error="zombie verdict",
            attempts=9, wall_seconds=0.0,
        )
        assert not mf.write_fail(tmp_path, "job1", "f" * 16, second)
        kept = mf.read_fail(tmp_path, "job1", "f" * 16)
        assert kept.error == "first"


class TestJobStoreHardening:
    """Damaged, missing, and misshapen records are typed errors."""

    def _damaged(self, tmp_path, body: str) -> tuple[JobStore, str]:
        store = JobStore(tmp_path)
        job_id = store.submit(JobSpec(experiment="table2"))
        store.path_for(job_id).write_text(body, encoding="utf-8")
        return store, job_id

    @pytest.mark.parametrize(
        "body", ["null", "[1, 2]", '"a string"', '{"spec": 42}',
                 "{not json", ""]
    )
    def test_damaged_record_raises_jobeerror(self, tmp_path, body):
        store, job_id = self._damaged(tmp_path, body)
        with pytest.raises(JobError, match=job_id):
            store.get(job_id)

    def test_damaged_record_is_skipped_by_listing(self, tmp_path):
        store, _ = self._damaged(tmp_path, "null")
        healthy = store.submit(JobSpec(experiment="table2"))
        listed = store.list_jobs()
        assert [r.job_id for r in listed] == [healthy]

    def test_record_deleted_between_list_and_get(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.submit(JobSpec(experiment="table2"))
        store.path_for(job_id).unlink()
        with pytest.raises(JobError, match="unknown"):
            store.get(job_id)

    def test_invalid_state_update_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.get(store.submit(JobSpec(experiment="table2")))
        with pytest.raises(JobError, match="invalid job state"):
            store.update(record, state="exploded")

    def test_status_cli_reports_damaged_record_typed(
        self, tmp_path, capsys
    ):
        store, job_id = self._damaged(tmp_path, "null")
        assert service_main(
            ["status", "--dir", str(tmp_path), job_id]
        ) == 1
        err = capsys.readouterr().err
        assert "malformed" in err or "unreadable" in err

    def test_fetch_cli_reports_unknown_job_typed(
        self, tmp_path, capsys
    ):
        assert service_main(
            ["fetch", "--dir", str(tmp_path), "ghost"]
        ) == 1
        assert "unknown job" in capsys.readouterr().err

    def test_unreadable_result_is_typed(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.submit(JobSpec(experiment="table2"))
        store.update(store.get(job_id), state="done")
        store.result_path(job_id).write_bytes(b"\x80\x04 garbage")
        with pytest.raises(JobError, match="unreadable"):
            store.fetch(job_id)


class TestCancelAndDeadlines:
    """Operator cancellation and submission deadlines are terminal."""

    def test_cancel_requires_a_live_job(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(JobError, match="unknown"):
            store.cancel("ghost")
        job_id = store.submit(JobSpec(experiment="table2"))
        cancelled = store.cancel(job_id, reason="operator says so")
        assert cancelled.state == "cancelled"
        assert "operator says so" in cancelled.error
        with pytest.raises(JobError, match="already cancelled"):
            store.cancel(job_id)

    def test_fetch_of_cancelled_job_names_the_reason(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.submit(JobSpec(experiment="table2"))
        store.cancel(job_id, reason="budget cut")
        with pytest.raises(JobError, match="budget cut"):
            store.fetch(job_id)

    def test_cancel_cli_roundtrip(self, tmp_path, capsys):
        assert service_main([
            "submit", "table2", "--dir", str(tmp_path), "--quick",
        ]) == 0
        job_id = capsys.readouterr().out.strip()
        assert service_main([
            "cancel", "--dir", str(tmp_path), job_id,
            "--reason", "operator request",
        ]) == 0
        assert "[cancelled]" in capsys.readouterr().out
        assert JobStore(tmp_path).get(job_id).state == "cancelled"
        # Cancelling a terminal job is a typed, clean failure.
        assert service_main(
            ["cancel", "--dir", str(tmp_path), job_id]
        ) == 1
        assert "already cancelled" in capsys.readouterr().err

    def test_submit_rejects_non_positive_timeout(self, tmp_path):
        assert service_main([
            "submit", "table2", "--dir", str(tmp_path),
            "--job-timeout", "0",
        ]) == 2

    def test_deadline_expiry_is_terminal_and_stops_workers(
        self, tmp_path
    ):
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(
            JobSpec(
                experiment="table2", n_tasks=_TASKS, quick=True,
                timeout_seconds=0.2,
            )
        )
        coordinator = Coordinator(tmp_path)
        coordinator.run_once()
        time.sleep(0.25)
        assert coordinator.run_once()["expired"] == 1
        assert jobs.get(job_id).state == "expired"
        with pytest.raises(JobError, match="expired"):
            jobs.fetch(job_id)
        assert Worker(tmp_path, worker_id="late").serve(
            poll_seconds=0.01, idle_rounds=2
        ) == 0
        # A terminal job is never retired twice.
        assert coordinator.run_once()["expired"] == 0

    def test_no_deadline_means_no_expiry(self, tmp_path):
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(
            JobSpec(experiment="table2", n_tasks=_TASKS, quick=True)
        )
        coordinator = Coordinator(tmp_path)
        assert coordinator.run_once()["expired"] == 0
        assert jobs.get(job_id).state == "running"


class TestCoordinatorRecovery:
    """reconcile() repairs the torn states a dead coordinator leaves."""

    def _finished_job(self, tmp_path) -> tuple[JobStore, str]:
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(
            JobSpec(experiment="table2", n_tasks=_TASKS, quick=True)
        )
        Coordinator(tmp_path).run_once()
        Worker(tmp_path, worker_id="w1").serve(
            poll_seconds=0.01, idle_rounds=2
        )
        Coordinator(tmp_path).run_once()
        assert jobs.get(job_id).state == "done"
        return jobs, job_id

    def test_running_without_manifest_is_requeued(self, tmp_path):
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(
            JobSpec(experiment="table2", n_tasks=_TASKS, quick=True)
        )
        Coordinator(tmp_path).run_once()
        mf.manifest_path(tmp_path, job_id).unlink()
        counts = Coordinator(tmp_path).reconcile()
        assert counts == {"requeued": 1, "rebuilt": 0}
        assert jobs.get(job_id).state == "submitted"
        # The next pass re-expands deterministically and completes.
        Coordinator(tmp_path).run_once()
        Worker(tmp_path, worker_id="w2").serve(
            poll_seconds=0.01, idle_rounds=2
        )
        Coordinator(tmp_path).run_once()
        assert jobs.get(job_id).state == "done"

    def test_done_without_result_is_refinalised(self, tmp_path):
        jobs, job_id = self._finished_job(tmp_path)
        reference = jobs.fetch(job_id)
        jobs.result_path(job_id).unlink()
        coordinator = Coordinator(tmp_path)
        counts = coordinator.reconcile()
        assert counts == {"requeued": 0, "rebuilt": 1}
        assert jobs.get(job_id).state == "running"
        coordinator.run_once()
        rebuilt = jobs.fetch(job_id)
        assert rebuilt.text == reference.text
        assert rebuilt.data == reference.data

    def test_healthy_tree_reconciles_to_zero(self, tmp_path):
        _, _ = self._finished_job(tmp_path)
        assert Coordinator(tmp_path).reconcile() == {
            "requeued": 0, "rebuilt": 0,
        }

    def test_adopted_manifest_is_not_rewritten(self, tmp_path):
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(
            JobSpec(experiment="table2", n_tasks=_TASKS, quick=True)
        )
        Coordinator(tmp_path).run_once()
        manifest_path = mf.manifest_path(tmp_path, job_id)
        before = manifest_path.read_bytes()
        # Simulate the mid-expand crash: record back to submitted with
        # the manifest already durable.
        jobs.update(jobs.get(job_id), state="submitted")
        assert Coordinator(tmp_path).run_once()["expanded"] == 1
        record = jobs.get(job_id)
        assert record.state == "running"
        assert record.cells_total > 0
        assert manifest_path.read_bytes() == before


class TestGracefulDrain:
    """The first signal finishes in-flight work and exits cleanly."""

    def test_predrained_worker_serves_nothing(self, tmp_path):
        jobs = JobStore(tmp_path)
        jobs.submit(
            JobSpec(experiment="table2", n_tasks=_TASKS, quick=True)
        )
        Coordinator(tmp_path).run_once()
        worker = Worker(tmp_path, worker_id="drained")
        worker.request_drain()
        assert worker.draining
        assert worker.serve(poll_seconds=0.01, idle_rounds=99) == 0

    def test_predrained_coordinator_returns_after_reconcile(
        self, tmp_path
    ):
        coordinator = Coordinator(tmp_path)
        coordinator.request_drain()
        coordinator.serve(poll_seconds=0.01)  # returns immediately

    @pytest.mark.slow
    def test_sigterm_drains_worker_and_flushes_metrics(self, tmp_path):
        jobs = JobStore(tmp_path)
        job_id = jobs.submit(
            JobSpec(experiment="table2", n_tasks=_TASKS, quick=True)
        )
        Coordinator(tmp_path).run_once()
        metrics_path = tmp_path / "drain.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        # The hang fault pins the victim inside a known cell so the
        # signal provably lands mid-flight (see tools/smoke_lint.py for
        # the same discipline in CI shell).
        victim = subprocess.Popen(
            [
                sys.executable, "-m", "repro.evalx.service", "worker",
                "--dir", str(tmp_path), "--worker-id", "draining",
                "--ttl", "30", "--poll", "0.05",
                "--metrics", str(metrics_path),
                "--inject-faults", "hang(1.0)@gcc",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        store = CheckpointStore(tmp_path / "store", resume=True)
        manifest = mf.read_manifest(tmp_path, job_id)
        gcc = next(e for e in manifest.cells if e.label == "gcc")
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if store.lease_path_for(gcc.fingerprint).exists():
                break
            time.sleep(0.02)
        victim.send_signal(signal.SIGTERM)
        _, err = victim.communicate(timeout=120)
        assert victim.returncode == 0, err
        assert "drained after SIGTERM" in err
        # The in-flight cell finished and its record was published.
        assert store.has(gcc.fingerprint)
        events = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        drains = [e for e in events if e.get("event") == "drain"]
        assert len(drains) == 1
        assert drains[0]["role"] == "worker"
        assert drains[0]["signal"] == "SIGTERM"
        # No lease was left behind: the normal path released it.
        assert not store.leases()


class TestJobAndDrainMetrics:
    """The new RunMetrics event kinds serialise as documented."""

    def test_job_event_schema(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with RunMetrics(path=path) as metrics:
            metrics.job_event("j1", "cancelled", reason="operator")
            metrics.job_event("j2", "deadline_expired")
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert events[0]["event"] == "job"
        assert events[0]["job"] == "j1"
        assert events[0]["action"] == "cancelled"
        assert events[0]["reason"] == "operator"
        assert events[1]["action"] == "deadline_expired"

    def test_drain_event_schema(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with RunMetrics(path=path) as metrics:
            metrics.drain_event("worker", "SIGTERM", served=3)
            metrics.drain_event("coordinator", "SIGINT")
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert events[0] == {
            **events[0],
            "event": "drain",
            "role": "worker",
            "signal": "SIGTERM",
            "served": 3,
        }
        assert events[1]["role"] == "coordinator"
        assert "served" not in events[1] or events[1]["served"] is None
