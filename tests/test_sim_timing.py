"""Tests for the task-granularity timing simulator."""

import pytest

from repro.errors import PredictorConfigError, SimulationError
from repro.predictors.exit_predictors import (
    PathExitPredictor,
    SimpleExitPredictor,
)
from repro.predictors.folding import DolcSpec
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.task_predictor import (
    HeaderTaskPredictor,
    PerfectTaskPredictor,
)
from repro.predictors.ttb import CorrelatedTaskTargetBuffer
from repro.sim.timing import TimingConfig, simulate_timing
from repro.sim.timing.ring import ProcessingRing


def header_predictor(workload):
    return HeaderTaskPredictor(
        program=workload.compiled.program,
        exit_predictor=PathExitPredictor(DolcSpec.parse("6-5-8-9(3)")),
        cttb=CorrelatedTaskTargetBuffer(DolcSpec.parse("5-5-6-7(3)")),
        ras=ReturnAddressStack(depth=32),
    )


class TestTimingConfig:
    def test_defaults_valid(self):
        TimingConfig()

    def test_rejects_zero_units(self):
        with pytest.raises(PredictorConfigError):
            TimingConfig(n_units=0)

    def test_rejects_bad_forward_fraction(self):
        with pytest.raises(PredictorConfigError):
            TimingConfig(forward_fraction=1.5)

    def test_rejects_negative_penalties(self):
        with pytest.raises(PredictorConfigError):
            TimingConfig(task_mispredict_penalty=-1)


class TestProcessingRing:
    def test_round_robin_free_times(self):
        ring = ProcessingRing(2)
        ring.occupy_and_commit(10)
        ring.occupy_and_commit(12)
        # Next unit is the one that committed at 10? No: round-robin wraps
        # back to unit 0, whose occupant committed at 10.
        assert ring.unit_free_time() == 10

    def test_fifo_commit_enforced(self):
        ring = ProcessingRing(2)
        ring.occupy_and_commit(10)
        with pytest.raises(SimulationError):
            ring.occupy_and_commit(9)

    def test_squash_frees_future_units(self):
        ring = ProcessingRing(3)
        ring.occupy_and_commit(5)
        ring.occupy_and_commit(100)
        ring.squash_speculative(restart_time=10)
        ring.occupy_and_commit(100)  # commits stay monotone
        assert ring.last_commit_time == 100

    def test_needs_a_unit(self):
        with pytest.raises(SimulationError):
            ProcessingRing(0)


class TestSimulateTiming:
    def test_perfect_prediction_upper_bounds_real(self, compress_workload):
        perfect = simulate_timing(
            compress_workload,
            PerfectTaskPredictor(compress_workload.trace),
        )
        real = simulate_timing(
            compress_workload, header_predictor(compress_workload)
        )
        assert perfect.ipc >= real.ipc
        assert perfect.task_mispredicts == 0
        assert real.tasks == perfect.tasks

    def test_better_exit_prediction_gives_higher_ipc(self, gcc_workload):
        """PATH beats the Simple (task-address-indexed) predictor on gcc —
        the mechanism behind Table 4."""
        simple_predictor = HeaderTaskPredictor(
            program=gcc_workload.compiled.program,
            exit_predictor=SimpleExitPredictor(index_bits=14),
            cttb=CorrelatedTaskTargetBuffer(DolcSpec.parse("5-5-6-7(3)")),
            ras=ReturnAddressStack(depth=32),
        )
        simple = simulate_timing(gcc_workload, simple_predictor)
        path = simulate_timing(gcc_workload, header_predictor(gcc_workload))
        assert path.ipc > simple.ipc
        assert path.task_mispredicts < simple.task_mispredicts

    def test_instructions_match_trace(self, compress_workload):
        result = simulate_timing(
            compress_workload,
            PerfectTaskPredictor(compress_workload.trace),
        )
        assert result.instructions == (
            compress_workload.trace.total_instructions()
        )

    def test_more_units_never_slower(self, compress_workload):
        def run(n_units):
            return simulate_timing(
                compress_workload,
                PerfectTaskPredictor(compress_workload.trace),
                config=TimingConfig(n_units=n_units),
            )

        assert run(4).cycles <= run(1).cycles

    def test_mispredict_penalty_costs_cycles(self, compress_workload):
        def run(penalty):
            return simulate_timing(
                compress_workload,
                header_predictor(compress_workload),
                config=TimingConfig(task_mispredict_penalty=penalty),
            )

        assert run(20).cycles >= run(0).cycles

    def test_serial_fraction_slows_machine(self, compress_workload):
        def run(fraction):
            return simulate_timing(
                compress_workload,
                PerfectTaskPredictor(compress_workload.trace),
                config=TimingConfig(forward_fraction=fraction),
            )

        assert run(1.0).cycles >= run(0.0).cycles

    def test_limit(self, compress_workload):
        result = simulate_timing(
            compress_workload,
            PerfectTaskPredictor(compress_workload.trace.head(100)),
            limit=100,
        )
        assert result.tasks == 100

    def test_ipc_positive(self, compress_workload):
        result = simulate_timing(
            compress_workload,
            PerfectTaskPredictor(compress_workload.trace),
        )
        assert result.ipc > 0.0
        assert result.task_mispredict_rate == 0.0
