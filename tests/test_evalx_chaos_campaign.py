"""The deterministic chaos-campaign runner (``repro-chaos``).

The campaign is the service's executable failure-semantics contract:
each scenario injects one fault family against a real service tree and
machine-verifies the documented outcome. These tests pin the runner
itself — CLI contract, report schema, and the determinism guarantee
that CI leans on (same ``--seed`` → same outcomes) — and smoke a
representative scenario from each speed class.
"""

from __future__ import annotations

import json

import pytest

from repro.evalx.chaos import SCENARIOS, Campaign, main as chaos_main

#: The cheapest scenarios: they drive the job state machine without
#: ever running an experiment cell, so they need no reference run and
#: no subprocesses.
_FAST = "deadline-expiry,cancel-mid-flight"


class TestCli:
    def test_unknown_scenario_is_a_usage_error(self, tmp_path, capsys):
        code = chaos_main([
            "--scenarios", "no-such-scenario",
            "--dir", str(tmp_path),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "no-such-scenario" in err
        # The error teaches the operator the valid names.
        assert "deadline-expiry" in err

    def test_all_is_the_full_matrix(self):
        # Every documented fault family is registered; the CI job's
        # `--scenarios all` really covers the whole matrix.
        assert set(SCENARIOS) == {
            "kill-worker-mid-lease",
            "kill-coordinator-mid-expand",
            "kill-coordinator-mid-finalise",
            "hang-steal-zombie",
            "corrupt-lease",
            "corrupt-job-record",
            "corrupt-result",
            "poison-cell",
            "deadline-expiry",
            "cancel-mid-flight",
            "two-tenant-interference",
        }

    def test_fast_scenarios_pass_and_report_is_written(
        self, tmp_path, capsys
    ):
        out = tmp_path / "report.json"
        code = chaos_main([
            "--scenarios", _FAST,
            "--dir", str(tmp_path / "campaign"),
            "--out", str(out),
            "--tasks", "1500",
        ])
        assert code == 0
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["ok"] is True
        assert report["seed"] == 1302
        assert report["tasks"] == 1500
        assert set(report["outcomes"]) == {
            "deadline-expiry", "cancel-mid-flight",
        }
        for name, checks in report["outcomes"].items():
            assert checks, f"scenario {name} verified nothing"
            assert all(ok for _, ok in checks)
            # details mirrors outcomes check-for-check.
            assert [d["name"] for d in report["details"][name]] == [
                c for c, _ in checks
            ]
        stdout = capsys.readouterr().out
        assert "[chaos] 2 scenario(s)" in stdout
        assert "0 failure(s)" in stdout

    def test_harness_exception_is_a_failed_check_not_a_crash(
        self, tmp_path, monkeypatch
    ):
        def _broken(campaign, scenario):
            raise RuntimeError("harness bug")

        monkeypatch.setitem(SCENARIOS, "deadline-expiry", _broken)
        report = Campaign(tmp_path, seed=1, tasks=100).run(
            ["deadline-expiry"]
        )
        assert report["ok"] is False
        assert report["outcomes"]["deadline-expiry"] == [
            ["scenario ran without harness error", False]
        ]
        detail = report["details"]["deadline-expiry"][0]["detail"]
        assert "harness bug" in detail


class TestDeterminism:
    def test_same_seed_means_same_outcomes(self, tmp_path):
        """The CI contract: two runs with one seed agree bit-for-bit on
        the outcomes core (details may differ — pids, wall timings)."""
        reports = []
        for run in ("a", "b"):
            out = tmp_path / f"{run}.json"
            assert chaos_main([
                "--scenarios", _FAST,
                "--seed", "7",
                "--dir", str(tmp_path / run),
                "--out", str(out),
                "--tasks", "1500",
            ]) == 0
            reports.append(json.loads(out.read_text(encoding="utf-8")))
        first, second = reports
        assert first["outcomes"] == second["outcomes"]
        assert first["seed"] == second["seed"] == 7

    def test_default_out_lands_inside_the_campaign_dir(self, tmp_path):
        root = tmp_path / "campaign"
        assert chaos_main([
            "--scenarios", "cancel-mid-flight",
            "--dir", str(root),
            "--tasks", "1500",
        ]) == 0
        assert (root / "chaos-report.json").is_file()


@pytest.mark.slow
class TestSubprocessScenarios:
    """One representative from each subprocess-driven speed class."""

    def test_kill_and_poison_scenarios_pass(self, tmp_path):
        out = tmp_path / "report.json"
        code = chaos_main([
            "--scenarios", "kill-worker-mid-lease,poison-cell",
            "--dir", str(tmp_path / "campaign"),
            "--out", str(out),
            "--tasks", "1500",
        ])
        report = json.loads(out.read_text(encoding="utf-8"))
        assert code == 0, json.dumps(report["details"], indent=2)
        assert report["ok"] is True
        quarantine_checks = dict(
            (name, ok)
            for name, ok in report["outcomes"]["poison-cell"]
        )
        # The headline invariant: quarantine after exactly N kills.
        assert any(
            "quarantine" in name for name in quarantine_checks
        )
