"""Property-based fuzzing of the partition -> compile -> execute pipeline.

Hypothesis generates random miniature benchmark profiles (random seeds,
construct mixes, sizes, partition caps); for each we run the entire stack
and check the invariants that every legal Multiscalar executable and trace
must satisfy, regardless of the program's shape.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import PartitionConfig, compile_program
from repro.isa.controlflow import MAX_EXITS_PER_TASK
from repro.synth.executor import TraceExecutor
from repro.synth.generator import SyntheticProgramGenerator
from repro.synth.profiles import BenchmarkProfile, PaperStats
from repro.synth.trace import CF_TYPE_CODES

_SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def tiny_profiles(draw):
    return BenchmarkProfile(
        name="fuzz",
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        paper=PaperStats("fuzz", 0, 0, 0),
        n_hot_functions=draw(st.integers(min_value=1, max_value=6)),
        n_cold_functions=draw(st.integers(min_value=0, max_value=3)),
        call_levels=draw(st.integers(min_value=1, max_value=4)),
        constructs_per_function=(1, draw(st.integers(2, 8))),
        max_blocks_per_task=draw(st.sampled_from([1, 2, 4, 8, 16])),
        w_if=draw(st.floats(0.0, 4.0)),
        w_ifelse=draw(st.floats(0.0, 3.0)),
        w_loop=draw(st.floats(0.0, 3.0)),
        w_call=draw(st.floats(0.0, 4.0)),
        w_switch=draw(st.floats(0.0, 1.0)),
        w_icall=draw(st.floats(0.0, 1.0)),
        w_straight=1.0,
        recursion_depth=draw(st.sampled_from([0, 0, 5])),
    )


def _compile(profile):
    program_cfg = SyntheticProgramGenerator(profile).generate()
    return compile_program(
        program_cfg,
        name="fuzz",
        config=PartitionConfig(
            max_blocks_per_task=profile.max_blocks_per_task
        ),
    )


class TestCompiledInvariants:
    @_SLOW
    @given(tiny_profiles())
    def test_every_task_has_legal_header(self, profile):
        compiled = _compile(profile)
        compiled.program.tfg.validate()
        for task in compiled.program.tfg:
            assert 1 <= task.n_exits <= MAX_EXITS_PER_TASK
            assert task.instruction_count >= 1
            assert task.address % 4 == 0

    @_SLOW
    @given(tiny_profiles())
    def test_blocks_map_into_tasks(self, profile):
        compiled = _compile(profile)
        for label, cblock in compiled.blocks.items():
            task = compiled.program.task(cblock.task_address)
            if cblock.terminator_exit_index is not None:
                assert cblock.terminator_exit_index < task.n_exits
            for index in cblock.successor_exit_index:
                if index is not None:
                    assert index < task.n_exits

    @_SLOW
    @given(tiny_profiles())
    def test_block_cap_respected(self, profile):
        compiled = _compile(profile)
        blocks_per_task: dict[int, int] = {}
        for cblock in compiled.blocks.values():
            blocks_per_task[cblock.task_address] = (
                blocks_per_task.get(cblock.task_address, 0) + 1
            )
        assert max(blocks_per_task.values()) <= profile.max_blocks_per_task


class TestTraceInvariants:
    @_SLOW
    @given(tiny_profiles())
    def test_executed_trace_is_consistent(self, profile):
        compiled = _compile(profile)
        trace = TraceExecutor(compiled, seed=profile.seed).run(400)
        program = compiled.program
        for i in range(len(trace)):
            addr = int(trace.task_addr[i])
            exit_index = int(trace.exit_index[i])
            task = program.task(addr)
            assert exit_index < task.n_exits
            # The recorded type matches the header's exit type.
            header_exit = task.exit(exit_index)
            assert CF_TYPE_CODES[header_exit.cf_type] == int(
                trace.cf_type[i]
            )
            if i + 1 < len(trace):
                assert int(trace.next_addr[i]) == int(
                    trace.task_addr[i + 1]
                )

    @_SLOW
    @given(tiny_profiles())
    def test_execution_deterministic(self, profile):
        compiled = _compile(profile)
        a = TraceExecutor(compiled, seed=7).run(200)
        b = TraceExecutor(compiled, seed=7).run(200)
        assert a.task_addr.tolist() == b.task_addr.tolist()
        assert a.exit_index.tolist() == b.exit_index.tolist()


class TestImageRoundTripProperty:
    @_SLOW
    @given(tiny_profiles())
    def test_any_generated_program_round_trips(self, profile):
        import tempfile
        from pathlib import Path

        from repro.isa.image import load_program, save_program

        compiled = _compile(profile)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "p.msx"
            save_program(compiled.program, path)
            loaded = load_program(path)
        assert loaded.entry == compiled.program.entry
        assert (
            loaded.static_task_count == compiled.program.static_task_count
        )
        for address in compiled.program.tfg.addresses():
            assert (
                loaded.task(address).header
                == compiled.program.task(address).header
            )
