"""Tests for register masks and the dependence-aware timing mode."""

import pytest

from repro.errors import TaskFormatError
from repro.isa.controlflow import ControlFlowType
from repro.isa.task import StaticTask, TaskExit, TaskHeader
from repro.predictors.task_predictor import PerfectTaskPredictor
from repro.sim.timing import TimingConfig, simulate_timing


class TestMaskPlumbing:
    def test_tasks_carry_masks(self, gcc_workload):
        program = gcc_workload.compiled.program
        for task in program.tfg:
            assert 0 <= task.header.create_mask <= 0xFFFF
            assert 0 <= task.use_mask <= 0xFFFF
            # Every generated-function task aggregates its blocks' masks;
            # only the synthetic driver (main) carries none.
            if not task.name.startswith("main:"):
                assert task.header.create_mask != 0
                assert task.use_mask != 0

    def test_masks_vary_across_tasks(self, gcc_workload):
        masks = {
            task.header.create_mask
            for task in gcc_workload.compiled.program.tfg
        }
        assert len(masks) > 10

    def test_negative_use_mask_rejected(self):
        header = TaskHeader(
            exits=(TaskExit(cf_type=ControlFlowType.RETURN),)
        )
        with pytest.raises(TaskFormatError):
            StaticTask(address=0x100, header=header, use_mask=-1)

    def test_masks_deterministic(self):
        from repro.synth.generator import SyntheticProgramGenerator
        from repro.synth.profiles import get_profile
        from repro.compiler import PartitionConfig, compile_program

        def build():
            profile = get_profile("compress")
            cfg = SyntheticProgramGenerator(profile).generate()
            return compile_program(
                cfg, name="c",
                config=PartitionConfig(
                    max_blocks_per_task=profile.max_blocks_per_task
                ),
            )

        a, b = build(), build()
        masks_a = {
            t.address: (t.header.create_mask, t.use_mask)
            for t in a.program.tfg
        }
        masks_b = {
            t.address: (t.header.create_mask, t.use_mask)
            for t in b.program.tfg
        }
        assert masks_a == masks_b


class TestDependenceAwareTiming:
    def test_dependence_awareness_never_slower(self, compress_workload):
        """Skipping forwarding stalls for independent task pairs can only
        remove serialization."""
        def run(aware):
            return simulate_timing(
                compress_workload,
                PerfectTaskPredictor(compress_workload.trace),
                config=TimingConfig(dependence_aware=aware),
            )

        uniform = run(False)
        aware = run(True)
        assert aware.cycles <= uniform.cycles
        assert aware.ipc >= uniform.ipc

    def test_dependence_awareness_changes_something(self, gcc_workload):
        """With 2-register masks over 16 registers, many neighbouring task
        pairs are independent: the aware model must actually diverge."""
        def run(aware):
            return simulate_timing(
                gcc_workload,
                PerfectTaskPredictor(gcc_workload.trace.head(5000)),
                config=TimingConfig(dependence_aware=aware),
                limit=5000,
            )

        assert run(True).cycles < run(False).cycles

    def test_full_serial_fraction_still_dominates(self, compress_workload):
        """Even dependence-aware, forward_fraction=1.0 with dependent pairs
        must cost cycles vs 0.0."""
        def run(fraction):
            return simulate_timing(
                compress_workload,
                PerfectTaskPredictor(compress_workload.trace.head(4000)),
                config=TimingConfig(
                    dependence_aware=True, forward_fraction=fraction
                ),
                limit=4000,
            )

        assert run(1.0).cycles >= run(0.0).cycles
