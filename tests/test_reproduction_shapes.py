"""Reproduction shape tests: the paper's qualitative findings must hold.

These are the tests that make this repository a *reproduction* rather than
just a simulator: each asserts an ordering or crossover the paper reports,
on the same experiment drivers that regenerate the tables and figures.
They run the drivers in quick mode (40k-task traces, sparse sweeps), which
is enough for the orderings even though absolute rates are still cold.
"""

import pytest

from repro.evalx.registry import run_experiment


@pytest.fixture(scope="module")
def figure6():
    return run_experiment("figure6", quick=True)


#: gcc's task working set unfolds slowly (its driver iterations are long);
#: experiments whose assertions depend on working-set size need more than
#: quick mode's 40k-task traces.
_DEEP_TASKS = 120_000


@pytest.fixture(scope="module")
def figure7():
    return run_experiment("figure7", n_tasks=_DEEP_TASKS, quick=True)


@pytest.fixture(scope="module")
def figure8():
    return run_experiment("figure8", quick=True)


@pytest.fixture(scope="module")
def figure10():
    return run_experiment("figure10", quick=True)


@pytest.fixture(scope="module")
def figure11():
    return run_experiment("figure11", n_tasks=_DEEP_TASKS, quick=True)


@pytest.fixture(scope="module")
def figure12():
    return run_experiment("figure12", quick=True)


@pytest.fixture(scope="module")
def table3():
    return run_experiment("table3", quick=True)


@pytest.fixture(scope="module")
def table4():
    return run_experiment("table4", quick=True)


class TestTable2Shapes:
    @pytest.fixture(scope="class")
    def table2(self):
        return run_experiment("table2", n_tasks=_DEEP_TASKS, quick=True)

    def test_working_set_ordering_matches_paper(self, table2):
        seen = {
            name: table2.data[name]["distinct_tasks_seen"]
            for name in table2.data
        }
        # gcc has by far the largest task working set; compress the smallest.
        assert seen["gcc"] == max(seen.values())
        assert seen["compress"] == min(seen.values())

    def test_static_at_least_distinct(self, table2):
        for name, row in table2.data.items():
            assert row["static_tasks"] >= row["distinct_tasks_seen"]


class TestFigure3Shapes:
    def test_single_exit_tasks_dominate_statics(self):
        result = run_experiment("figure3", quick=True)
        for name in ("gcc", "compress", "espresso", "sc", "xlisp"):
            static = result.data[name]["static"]
            assert static[1] == max(static.values())

    def test_distributions_sum_to_one(self):
        result = run_experiment("figure3", quick=True)
        for name, views in result.data.items():
            for dist in views.values():
                assert sum(dist.values()) == pytest.approx(1.0)


class TestFigure4Shapes:
    def test_gcc_and_xlisp_have_indirect_exits(self):
        result = run_experiment("figure4", quick=True)
        for name in ("gcc", "xlisp"):
            dynamic = result.data[name]["dynamic"]
            indirect = (
                dynamic["indirect_branch"] + dynamic["indirect_call"]
            )
            assert indirect > 0.005

    def test_calls_balance_returns_dynamically(self):
        result = run_experiment("figure4", quick=True)
        for name, views in result.data.items():
            dynamic = views["dynamic"]
            calls = dynamic["call"] + dynamic["indirect_call"]
            # Returns also include main's driver re-entry, so allow slack.
            assert dynamic["return"] == pytest.approx(calls, abs=0.05)


class TestFigure6Shapes:
    """§5.1: the seven automata stratify into three tiers."""

    def test_last_exit_is_worst(self, figure6):
        series = figure6.data["series"]
        for i in range(len(figure6.data["depths"])):
            if figure6.data["depths"][i] == 0:
                continue
            others = [
                series[name][i] for name in series if name != "LE"
            ]
            assert series["LE"][i] >= max(others) - 0.002

    def test_leh2_among_best(self, figure6):
        series = figure6.data["series"]
        last = -1
        assert series["LEH-2"][last] <= series["LE"][last]
        assert series["LEH-2"][last] <= series["LEH-1"][last] + 0.002
        assert series["LEH-2"][last] <= series["VC2-MRU"][last] + 0.002

    def test_tiers_match_paper(self, figure6):
        """LEH-2 ~ VC3; LEH-1 ~ VC2 (within half a point at depth 4+)."""
        series = figure6.data["series"]
        last = -1
        assert series["LEH-2"][last] == pytest.approx(
            series["VC3-MRU"][last], abs=0.005
        )
        assert series["LEH-1"][last] == pytest.approx(
            series["VC2-MRU"][last], abs=0.005
        )


class TestFigure7Shapes:
    """§5.2: PATH beats GLOBAL everywhere and PER on 4 of 5 benchmarks."""

    def test_path_beats_global_at_depth(self, figure7):
        for name in ("gcc", "espresso", "sc", "xlisp"):
            series = figure7.data[name]
            assert series["path"][-1] <= series["global"][-1] + 0.003

    def test_sc_is_the_per_exception(self, figure7):
        series = figure7.data["sc"]
        assert series["per"][-1] < series["path"][-1]

    def test_path_beats_per_on_gcc_and_xlisp(self, figure7):
        for name in ("gcc", "xlisp"):
            series = figure7.data[name]
            assert series["path"][-1] < series["per"][-1]

    def test_depth_zero_identical_across_schemes(self, figure7):
        for name in ("gcc", "compress", "espresso", "sc", "xlisp"):
            series = figure7.data[name]
            assert series["path"][0] == pytest.approx(series["global"][0])
            assert series["path"][0] == pytest.approx(series["per"][0])

    def test_history_helps_path(self, figure7):
        for name in ("gcc", "espresso", "xlisp"):
            series = figure7.data[name]
            assert series["path"][-1] < series["path"][0]


class TestFigure8Shapes:
    """§5.3: the plain TTB performs very poorly; path correlation fixes it."""

    def test_ttb_miss_rate_is_high(self, figure8):
        assert figure8.data["gcc"]["ttb"] > 0.25
        assert figure8.data["xlisp"]["ttb"] > 0.25

    def test_cttb_beats_ttb_at_depth(self, figure8):
        for name in ("gcc", "xlisp"):
            data = figure8.data[name]
            assert min(data["cttb"][1:]) < data["ttb"]

    def test_history_helps_cttb(self, figure8):
        for name in ("gcc", "xlisp"):
            cttb = figure8.data[name]["cttb"]
            assert min(cttb[1:]) < cttb[0]


class TestFigure10Shapes:
    """§6.3: real implementations perform close to the ideal."""

    def test_real_tracks_ideal(self, figure10):
        for name in ("espresso", "xlisp", "compress", "sc"):
            series = figure10.data[name]
            for ideal, real in zip(series["ideal"], series["real"]):
                assert real >= ideal - 0.005  # aliasing can't help much
                assert real <= ideal + 0.05

    def test_depth_beats_depth0_for_real_tables(self, figure10):
        for name in ("gcc", "espresso", "xlisp"):
            real = figure10.data[name]["real"]
            assert min(real[1:]) < real[0]


class TestFigure11Shapes:
    def test_ideal_states_grow_with_depth(self, figure11):
        for name in ("gcc", "espresso"):
            ideal = figure11.data[name]["ideal"]
            assert ideal[-1] > ideal[0]

    def test_real_states_bounded_by_table(self, figure11):
        for name in ("gcc", "espresso"):
            real = figure11.data[name]["real"]
            assert max(real) <= 1 << 14

    def test_gcc_touches_more_states_than_espresso(self, figure11):
        assert (
            figure11.data["gcc"]["ideal"][-1]
            > figure11.data["espresso"]["ideal"][-1]
        )


class TestFigure12Shapes:
    def test_real_cttb_tracks_ideal_for_xlisp(self, figure12):
        series = figure12.data["xlisp"]
        for ideal, real in zip(series["ideal"][1:], series["real"][1:]):
            assert real <= ideal + 0.10

    def test_depth_helps_real_cttb(self, figure12):
        for name in ("gcc", "xlisp"):
            real = figure12.data[name]["real"]
            assert min(real[1:]) < real[0]


class TestTable3Shapes:
    """§5.4 / §6.4.2: header-based prediction beats CTTB-only."""

    def test_cttb_only_worse_everywhere(self, table3):
        for name, row in table3.data.items():
            assert row["exit_predictor_miss"] <= row["cttb_only_miss"] + 0.01

    def test_returns_hurt_most_without_ras(self, table3):
        for name in ("gcc", "xlisp"):
            row = table3.data[name]
            assert (
                row["return_miss_header"] < row["return_miss_cttb_only"]
            )

    def test_storage_ratio_about_four_x(self, table3):
        row = table3.data["gcc"]
        ratio = row["cttb_only_kbytes"] / row["exit_predictor_kbytes"]
        assert 2.5 < ratio < 6.0


class TestTable4Shapes:
    """§7: better task prediction increases IPC."""

    def test_perfect_is_upper_bound(self, table4):
        for name, ipcs in table4.data.items():
            best_real = max(
                ipcs[s] for s in ("Simple", "GLOBAL", "PER", "PATH")
            )
            assert ipcs["Perfect"] >= best_real

    def test_path_at_least_ties_everywhere(self, table4):
        for name, ipcs in table4.data.items():
            assert ipcs["PATH"] >= ipcs["Simple"] - 0.02

    def test_path_gains_on_gcc_and_xlisp(self, table4):
        for name in ("gcc", "xlisp"):
            ipcs = table4.data[name]
            assert ipcs["PATH"] > ipcs["Simple"]

    def test_ipcs_in_plausible_band(self, table4):
        for name, ipcs in table4.data.items():
            for value in ipcs.values():
                assert 0.5 < value < 8.0
