"""Disk trace cache: atomic publication and corruption tolerance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth import workloads


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """Point the disk cache at a temp dir, isolating the memory cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    saved_traces = dict(workloads._trace_cache)
    workloads._trace_cache.clear()
    yield tmp_path
    workloads._trace_cache.clear()
    workloads._trace_cache.update(saved_traces)


class TestDiskCache:
    def test_publishes_one_file_and_no_temp_leftovers(self, cache_dir):
        workloads.load_workload("compress", n_tasks=1500)
        assert len(list(cache_dir.glob("*.npz"))) == 1
        assert not list(cache_dir.glob("*tmp*"))

    def test_cache_round_trip_is_identical(self, cache_dir):
        first = workloads.load_workload("compress", n_tasks=1500)
        workloads._trace_cache.clear()  # force the disk path
        second = workloads.load_workload("compress", n_tasks=1500)
        assert np.array_equal(
            first.trace.task_addr, second.trace.task_addr
        )
        assert np.array_equal(
            first.trace.next_addr, second.trace.next_addr
        )

    def test_corrupt_cache_file_is_regenerated(self, cache_dir):
        first = workloads.load_workload("compress", n_tasks=1500)
        (path,) = cache_dir.glob("*.npz")
        path.write_bytes(b"this is not a zip archive")
        workloads._trace_cache.clear()
        second = workloads.load_workload("compress", n_tasks=1500)
        assert np.array_equal(
            first.trace.task_addr, second.trace.task_addr
        )
        # The corrupt file was replaced with a loadable one.
        (path,) = cache_dir.glob("*.npz")
        workloads._trace_cache.clear()
        third = workloads.load_workload("compress", n_tasks=1500)
        assert np.array_equal(
            first.trace.task_addr, third.trace.task_addr
        )

    def test_truncated_cache_file_is_regenerated(self, cache_dir):
        workloads.load_workload("compress", n_tasks=1500)
        (path,) = cache_dir.glob("*.npz")
        path.write_bytes(path.read_bytes()[: 100])
        workloads._trace_cache.clear()
        regenerated = workloads.load_workload("compress", n_tasks=1500)
        assert len(regenerated.trace) == 1500

    def test_disk_cache_enabled_follows_env(self, cache_dir, monkeypatch):
        assert workloads.disk_cache_enabled()
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        assert not workloads.disk_cache_enabled()

    def test_prewarm_populates_disk(self, cache_dir):
        assert workloads.prewarm_workload("compress", 1500) == "compress"
        assert len(list(cache_dir.glob("*.npz"))) == 1

    def test_cache_disabled_writes_nothing(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        workloads.load_workload("compress", n_tasks=1500)
        assert not list(cache_dir.iterdir())


class TestOrphanTempSweep:
    """Satellite bugfix: stale ``.tmp-<pid>.npz`` files from workers
    killed mid-write must not accumulate forever."""

    @staticmethod
    def _dead_pid() -> int:
        import subprocess

        proc = subprocess.Popen(["true"])
        proc.wait()
        return proc.pid

    def test_dead_pid_tmp_file_is_swept(self, cache_dir):
        orphan = cache_dir / f".x.tmp-{self._dead_pid()}.npz"
        orphan.write_bytes(b"partial write")
        removed = workloads.sweep_orphan_tmp_files(cache_dir)
        assert orphan in removed
        assert not orphan.exists()

    def test_live_recent_tmp_file_is_kept(self, cache_dir):
        import os

        in_flight = cache_dir / f".y.tmp-{os.getpid()}.npz"
        in_flight.write_bytes(b"being written right now")
        assert workloads.sweep_orphan_tmp_files(cache_dir) == []
        assert in_flight.exists()

    def test_old_tmp_file_is_swept_even_with_recycled_pid(self, cache_dir):
        import os
        import time

        stale = cache_dir / f".z.tmp-{os.getpid()}.npz"
        stale.write_bytes(b"hours old")
        ancient = time.time() - 2 * workloads._TMP_MAX_AGE_SECONDS
        os.utime(stale, (ancient, ancient))
        removed = workloads.sweep_orphan_tmp_files(cache_dir)
        assert stale in removed

    def test_real_cache_entries_are_never_touched(self, cache_dir):
        workloads.load_workload("compress", n_tasks=1500)
        (entry,) = cache_dir.glob("*.npz")
        orphan = cache_dir / f".w.tmp-{self._dead_pid()}.npz"
        orphan.write_bytes(b"junk")
        workloads.prewarm_workload("compress", 1500)  # sweeps on entry
        assert entry.exists()
        assert not orphan.exists()

    def test_sweep_counts_reaps_in_cache_counters(self, cache_dir):
        before = workloads.cache_counters()["orphan_tmp_reaps"]
        for stem in ("a", "b"):
            orphan = cache_dir / f".{stem}.tmp-{self._dead_pid()}.npz"
            orphan.write_bytes(b"junk")
        workloads.sweep_orphan_tmp_files(cache_dir)
        after = workloads.cache_counters()["orphan_tmp_reaps"]
        assert after == before + 2

    def test_checkpoint_tmp_names_match_the_sweep_pattern(
        self, cache_dir
    ):
        # The checkpoint store's temp naming (no .npz suffix) must be
        # covered by the same sweep as trace-cache temps.
        orphan = cache_dir / f".{'f' * 40}.tmp-{self._dead_pid()}"
        orphan.write_bytes(b"half a checkpoint record")
        removed = workloads.sweep_orphan_tmp_files(cache_dir)
        assert orphan in removed

    def test_prewarm_sweeps_active_checkpoint_dir(
        self, cache_dir, tmp_path, monkeypatch
    ):
        ckpt_dir = tmp_path / "ckpt-store"
        ckpt_dir.mkdir()
        orphan = ckpt_dir / f".{'e' * 40}.tmp-{self._dead_pid()}"
        orphan.write_bytes(b"torn record")
        keeper = ckpt_dir / (("e" * 40) + ".ckpt.json")
        keeper.write_text("{}")
        monkeypatch.setenv(workloads.CHECKPOINT_ENV, str(ckpt_dir))
        workloads.prewarm_workload("compress", 1500)
        assert not orphan.exists()
        assert keeper.exists()  # published records are never touched

    def test_prewarm_ignores_unset_checkpoint_env(
        self, cache_dir, monkeypatch
    ):
        monkeypatch.delenv(workloads.CHECKPOINT_ENV, raising=False)
        assert workloads.prewarm_workload("compress", 1500) == "compress"


class TestCacheCounters:
    """Hit/miss accounting consumed by the run metrics stream."""

    def test_build_then_memory_hit(self, cache_dir):
        before = workloads.cache_counters()
        workloads.load_workload("compress", n_tasks=1500)
        mid = workloads.cache_counters()
        assert mid["trace_builds"] == before["trace_builds"] + 1
        workloads.load_workload("compress", n_tasks=1500)
        after = workloads.cache_counters()
        assert (
            after["trace_memory_hits"] == mid["trace_memory_hits"] + 1
        )
        assert after["trace_builds"] == mid["trace_builds"]

    def test_disk_hit_counted_after_memory_cache_cleared(self, cache_dir):
        workloads.load_workload("compress", n_tasks=1500)
        workloads._trace_cache.clear()
        before = workloads.cache_counters()
        workloads.load_workload("compress", n_tasks=1500)
        after = workloads.cache_counters()
        assert after["trace_disk_hits"] == before["trace_disk_hits"] + 1
        assert after["trace_builds"] == before["trace_builds"]

    def test_counters_snapshot_is_a_copy(self, cache_dir):
        snapshot = workloads.cache_counters()
        snapshot["trace_builds"] += 100
        assert workloads.cache_counters() != snapshot


class TestTraceChecksum:
    """Tentpole satellite: cache entries carry a content checksum, so
    bit-level damage that still unzips is a detected miss, not wrong
    simulator input."""

    def test_saved_trace_embeds_checksum(self, cache_dir):
        workloads.load_workload("compress", n_tasks=1500)
        (path,) = cache_dir.glob("*.npz")
        with np.load(path) as data:
            assert "checksum" in data

    def test_tampered_column_is_detected_and_regenerated(self, cache_dir):
        from repro.errors import TraceError
        from repro.synth.trace import TaskTrace

        first = workloads.load_workload("compress", n_tasks=1500)
        (path,) = cache_dir.glob("*.npz")

        # Rewrite the file with one column changed but the stale
        # checksum kept — simulates silent bit-rot inside the archive.
        with np.load(path) as data:
            arrays = {name: data[name].copy() for name in data.files}
        arrays["exit_index"] = arrays["exit_index"].copy()
        arrays["exit_index"][0] ^= 1
        np.savez_compressed(path, **arrays)

        with pytest.raises(TraceError, match="checksum mismatch"):
            TaskTrace.load(path)

        # The cache layer treats it as a miss and regenerates cleanly.
        workloads._trace_cache.clear()
        second = workloads.load_workload("compress", n_tasks=1500)
        assert np.array_equal(
            first.trace.exit_index, second.trace.exit_index
        )

    def test_legacy_file_without_checksum_still_loads(self, cache_dir):
        from repro.synth.trace import TaskTrace

        workloads.load_workload("compress", n_tasks=1500)
        (path,) = cache_dir.glob("*.npz")
        with np.load(path) as data:
            arrays = {
                name: data[name].copy()
                for name in data.files
                if name != "checksum"
            }
        np.savez_compressed(path, **arrays)
        trace = TaskTrace.load(path)  # unverified, but not rejected
        assert len(trace) == 1500
