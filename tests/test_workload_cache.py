"""Disk trace cache: atomic publication and corruption tolerance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth import workloads


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """Point the disk cache at a temp dir, isolating the memory cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    saved_traces = dict(workloads._trace_cache)
    workloads._trace_cache.clear()
    yield tmp_path
    workloads._trace_cache.clear()
    workloads._trace_cache.update(saved_traces)


class TestDiskCache:
    def test_publishes_one_file_and_no_temp_leftovers(self, cache_dir):
        workloads.load_workload("compress", n_tasks=1500)
        assert len(list(cache_dir.glob("*.npz"))) == 1
        assert not list(cache_dir.glob("*tmp*"))

    def test_cache_round_trip_is_identical(self, cache_dir):
        first = workloads.load_workload("compress", n_tasks=1500)
        workloads._trace_cache.clear()  # force the disk path
        second = workloads.load_workload("compress", n_tasks=1500)
        assert np.array_equal(
            first.trace.task_addr, second.trace.task_addr
        )
        assert np.array_equal(
            first.trace.next_addr, second.trace.next_addr
        )

    def test_corrupt_cache_file_is_regenerated(self, cache_dir):
        first = workloads.load_workload("compress", n_tasks=1500)
        (path,) = cache_dir.glob("*.npz")
        path.write_bytes(b"this is not a zip archive")
        workloads._trace_cache.clear()
        second = workloads.load_workload("compress", n_tasks=1500)
        assert np.array_equal(
            first.trace.task_addr, second.trace.task_addr
        )
        # The corrupt file was replaced with a loadable one.
        (path,) = cache_dir.glob("*.npz")
        workloads._trace_cache.clear()
        third = workloads.load_workload("compress", n_tasks=1500)
        assert np.array_equal(
            first.trace.task_addr, third.trace.task_addr
        )

    def test_truncated_cache_file_is_regenerated(self, cache_dir):
        workloads.load_workload("compress", n_tasks=1500)
        (path,) = cache_dir.glob("*.npz")
        path.write_bytes(path.read_bytes()[: 100])
        workloads._trace_cache.clear()
        regenerated = workloads.load_workload("compress", n_tasks=1500)
        assert len(regenerated.trace) == 1500

    def test_disk_cache_enabled_follows_env(self, cache_dir, monkeypatch):
        assert workloads.disk_cache_enabled()
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        assert not workloads.disk_cache_enabled()

    def test_prewarm_populates_disk(self, cache_dir):
        assert workloads.prewarm_workload("compress", 1500) == "compress"
        assert len(list(cache_dir.glob("*.npz"))) == 1

    def test_cache_disabled_writes_nothing(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        workloads.load_workload("compress", n_tasks=1500)
        assert not list(cache_dir.iterdir())
