"""Tests for the trace executor: semantics and trace invariants."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.isa.controlflow import ControlFlowType
from repro.synth.behavior import FixedChoice, PeriodicChoice
from repro.synth.executor import TraceExecutor
from repro.synth.trace import CF_TYPE_CODES

from tests.helpers import (
    call_program,
    compile_small,
    diamond_program,
    run_trace,
    straightline_program,
    switch_program,
)


class TestStraightLineExecution:
    def test_trace_chains_addresses(self):
        compiled = compile_small(straightline_program())
        trace = run_trace(compiled, 12)
        # Every record's next_addr equals the following record's task_addr.
        np.testing.assert_array_equal(
            trace.next_addr[:-1], trace.task_addr[1:]
        )

    def test_exit_indices_within_headers(self):
        compiled = compile_small(straightline_program())
        trace = run_trace(compiled, 12)
        for addr, exit_index in zip(
            trace.task_addr.tolist(), trace.exit_index.tolist()
        ):
            assert exit_index < compiled.program.task(addr).n_exits

    def test_main_reentry_on_return(self):
        compiled = compile_small(straightline_program())
        trace = run_trace(compiled, 12)
        ret_code = CF_TYPE_CODES[ControlFlowType.RETURN]
        ret_positions = np.nonzero(trace.cf_type == ret_code)[0]
        assert len(ret_positions) > 0
        entry_task = compiled.entry_block("main").task_address
        for pos in ret_positions:
            assert int(trace.next_addr[pos]) == entry_task

    def test_requested_length_honoured(self):
        compiled = compile_small(straightline_program())
        assert len(run_trace(compiled, 37)) == 37

    def test_zero_length_rejected(self):
        compiled = compile_small(straightline_program())
        with pytest.raises(SimulationError):
            TraceExecutor(compiled).run(0)


class TestCallReturnSemantics:
    def test_calls_and_returns_balance(self):
        compiled = compile_small(call_program())
        trace = run_trace(compiled, 60)
        call_code = CF_TYPE_CODES[ControlFlowType.CALL]
        ret_code = CF_TYPE_CODES[ControlFlowType.RETURN]
        calls = int((trace.cf_type == call_code).sum())
        # Each main iteration: 2 calls + 2 returns from f + 1 main return.
        returns = int((trace.cf_type == ret_code).sum())
        assert calls > 0
        assert abs(returns - calls) <= calls  # returns include main's

    def test_call_targets_are_callee_entry(self):
        compiled = compile_small(call_program())
        trace = run_trace(compiled, 30)
        call_code = CF_TYPE_CODES[ControlFlowType.CALL]
        f_entry = compiled.entry_block("f").task_address
        for pos in np.nonzero(trace.cf_type == call_code)[0]:
            assert int(trace.next_addr[pos]) == f_entry

    def test_returns_resume_after_call_site(self):
        compiled = compile_small(call_program())
        trace = run_trace(compiled, 30)
        ret_code = CF_TYPE_CODES[ControlFlowType.RETURN]
        f_ret_task = compiled.block("f.ret").task_address
        return_targets = {
            int(trace.next_addr[pos])
            for pos in np.nonzero(trace.cf_type == ret_code)[0]
            if int(trace.task_addr[pos]) == f_ret_task
        }
        resume_points = {
            compiled.block("main.c2").task_address,
            compiled.block("main.ret").task_address,
        }
        assert return_targets == resume_points


class TestBranchAndSwitchExecution:
    def test_fixed_branch_takes_one_arm(self):
        compiled = compile_small(diamond_program(FixedChoice(0)))
        trace = run_trace(compiled, 40)
        then_task = compiled.block("main.then").task_address
        else_task = compiled.block("main.else").task_address
        addrs = set(trace.task_addr.tolist())
        assert then_task in addrs or then_task == compiled.block(
            "main.cond"
        ).task_address
        # The not-taken arm must never execute.
        cond_task = compiled.block("main.cond").task_address
        if else_task not in (cond_task, then_task):
            assert else_task not in addrs

    def test_periodic_branch_alternates_arms(self):
        compiled = compile_small(diamond_program(PeriodicChoice((0, 1))))
        trace = run_trace(compiled, 60)
        addrs = set(trace.task_addr.tolist()) | set(
            trace.next_addr.tolist()
        )
        then_task = compiled.block("main.then").task_address
        else_task = compiled.block("main.else").task_address
        assert then_task in addrs
        assert else_task in addrs

    def test_switch_reaches_selected_case(self):
        compiled = compile_small(switch_program(FixedChoice(2), arity=4))
        trace = run_trace(compiled, 30)
        ib_code = CF_TYPE_CODES[ControlFlowType.INDIRECT_BRANCH]
        case_task = compiled.block("main.case2").task_address
        for pos in np.nonzero(trace.cf_type == ib_code)[0]:
            assert int(trace.next_addr[pos]) == case_task


class TestExecutorDeterminism:
    def test_same_seed_same_trace(self, compress_workload):
        compiled = compress_workload.compiled
        a = TraceExecutor(compiled, seed=7).run(2000)
        b = TraceExecutor(compiled, seed=7).run(2000)
        np.testing.assert_array_equal(a.task_addr, b.task_addr)
        np.testing.assert_array_equal(a.exit_index, b.exit_index)
        np.testing.assert_array_equal(a.internal_mispredicts,
                                      b.internal_mispredicts)

    def test_different_seed_differs(self, compress_workload):
        compiled = compress_workload.compiled
        a = TraceExecutor(compiled, seed=1).run(2000)
        b = TraceExecutor(compiled, seed=2).run(2000)
        assert not np.array_equal(a.task_addr, b.task_addr)


class TestTraceInvariantsOnBenchmarks:
    """Whole-workload invariants over a real synthetic benchmark."""

    def test_next_addr_chain(self, xlisp_workload):
        trace = xlisp_workload.trace
        np.testing.assert_array_equal(
            trace.next_addr[:-1], trace.task_addr[1:]
        )

    def test_exits_within_header_bounds(self, xlisp_workload):
        n_exits_of = {
            t.address: t.n_exits
            for t in xlisp_workload.compiled.program.tfg
        }
        for addr, exit_index in zip(
            xlisp_workload.trace.task_addr.tolist(),
            xlisp_workload.trace.exit_index.tolist(),
        ):
            assert exit_index < n_exits_of[addr]

    def test_cf_type_matches_header_exit(self, xlisp_workload):
        program = xlisp_workload.compiled.program
        trace = xlisp_workload.trace
        for addr, exit_index, cf_code in zip(
            trace.task_addr.tolist()[:5000],
            trace.exit_index.tolist()[:5000],
            trace.cf_type.tolist()[:5000],
        ):
            header_exit = program.task(addr).exit(exit_index)
            assert CF_TYPE_CODES[header_exit.cf_type] == cf_code

    def test_mispredicts_bounded_by_branches(self, xlisp_workload):
        trace = xlisp_workload.trace
        assert np.all(
            trace.internal_mispredicts <= trace.internal_branches
        )

    def test_instructions_positive(self, xlisp_workload):
        assert np.all(xlisp_workload.trace.instructions >= 1)


class TestIntraTaskPrediction:
    """§2.2: the per-unit bimodal predictor handles intra-task branches
    'with only minimal accuracy loss'."""

    def test_bimodal_accuracy_reasonable(
        self, compress_workload, gcc_workload
    ):
        """Bias-dominated branches (compress) are captured well; even
        history-heavy workloads stay clearly above chance."""
        import numpy as np

        def accuracy(workload):
            trace = workload.trace
            branches = int(trace.internal_branches.sum(dtype=np.int64))
            misses = int(trace.internal_mispredicts.sum(dtype=np.int64))
            assert branches > 0
            return 1.0 - misses / branches

        assert accuracy(compress_workload) > 0.85
        assert accuracy(gcc_workload) > 0.6

    def test_mispredict_counts_deterministic(self, compress_workload):
        from repro.synth.executor import TraceExecutor

        a = TraceExecutor(compress_workload.compiled, seed=5).run(3000)
        b = TraceExecutor(compress_workload.compiled, seed=5).run(3000)
        assert (
            a.internal_mispredicts.tolist()
            == b.internal_mispredicts.tolist()
        )
