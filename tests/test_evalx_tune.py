"""The design-space autotuner: space, pure decisions, resume identity.

Three layers, mirroring the module split:

* the predictor design space enumerates valid, deduplicated points with
  exact storage accounting (:mod:`repro.predictors.design_space`);
* every search decision — schedule, population, scoring, promotion,
  frontier — is a pure deterministic function of completed rung results
  (:mod:`repro.evalx.tune`);
* therefore a search killed mid-rung and resumed from its checkpoint
  store reaches a byte-identical frontier artifact, which is this PR's
  acceptance criterion, exercised here for two workload profiles.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import PredictorConfigError
from repro.evalx.checkpoint import CheckpointStore
from repro.evalx.registry import run_experiment
from repro.evalx.tune import (
    LocalRungRunner,
    ServiceRungRunner,
    TuneError,
    TuneSpec,
    dump_artifact,
    initial_population,
    pareto_frontier,
    promote,
    render_report,
    run_search,
    rung_schedule,
    score_rung,
)
from repro.predictors.design_space import (
    TuneConfig,
    allocate_dolc,
    enumerate_space,
)
from repro.predictors.folding import DolcSpec

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestDesignSpace:
    def test_enumeration_yields_valid_deduplicated_points(self):
        space = enumerate_space()
        keys = [config.key for config in space]
        assert len(keys) == len(set(keys))
        for config in space:
            spec = config.spec()  # parses, so the spec is valid
            assert spec.index_bits >= 1
            assert config.storage_bits() > 0

    def test_enumeration_order_is_reproducible(self):
        first = [config.key for config in enumerate_space()]
        assert first == [config.key for config in enumerate_space()]

    def test_allocation_respects_recency_heuristic(self):
        for depth in range(2, 8):
            for bits in (10, 12, 14):
                for folds in (1, 2, 3):
                    spec = allocate_dolc(depth, bits, folds)
                    if spec is None:
                        continue
                    assert spec.index_bits == bits
                    assert spec.older_bits <= spec.last_bits
                    assert spec.last_bits <= spec.current_bits

    def test_depth_zero_allocation(self):
        assert allocate_dolc(0, 12, 1) == DolcSpec(0, 0, 0, 12, 1)
        assert allocate_dolc(0, 12, 2) is None  # nothing to fold

    def test_storage_accounts_for_automaton_width(self):
        entries = DolcSpec.parse("2-4-5-5(1)").table_entries
        le = TuneConfig("2-4-5-5(1)", "LE")
        leh3 = TuneConfig("2-4-5-5(1)", "LEH-3")
        assert le.storage_bits() == entries * 2
        assert leh3.storage_bits() == entries * 5

    def test_parse_rejects_bad_keys(self):
        with pytest.raises(PredictorConfigError):
            TuneConfig.parse("not-a-spec/LEH-2")
        with pytest.raises(PredictorConfigError):
            TuneConfig.parse("2-4-5-5(1)/NOSUCH")


class TestSearchDecisions:
    """Schedule, scoring, promotion, frontier: pure and deterministic."""

    def test_schedule_hits_both_endpoints(self):
        spec = TuneSpec(rungs=3, rung0_tasks=1_000, final_tasks=9_000)
        schedule = rung_schedule(spec)
        assert schedule[0] == 1_000
        assert schedule[-1] == 9_000
        assert list(schedule) == sorted(schedule)
        assert rung_schedule(
            TuneSpec(rungs=1, rung0_tasks=500, final_tasks=9_000)
        ) == (9_000,)

    def test_population_is_seeded_and_sorted(self):
        spec = TuneSpec(budget=5, seed=3)
        population = initial_population(spec)
        assert len(population) == 5
        assert population == sorted(population)
        assert population == initial_population(spec)
        assert population != initial_population(
            TuneSpec(budget=5, seed=4)
        )

    def test_score_rung_drops_candidates_with_gaps(self):
        grid = {
            "a": {"gcc": 0.1, "sc": 0.3},
            "b": {"gcc": 0.2, "sc": None},
            "c": {"gcc": 0.4},
        }
        scored = score_rung(grid, ["a", "b", "c"], ["gcc", "sc"])
        assert scored == [
            ("a", pytest.approx(0.2)),
            ("b", None),
            ("c", None),
        ]

    def test_promote_ranks_ties_on_key(self):
        scored = [("b", 0.2), ("a", 0.2), ("d", 0.1), ("c", None)]
        assert promote(scored, eta=2) == ["d", "a"]
        # keep overrides the halving; failures still never advance.
        assert promote(scored, eta=2, keep=10) == ["d", "a", "b"]

    def test_promote_keeps_at_least_one(self):
        assert promote([("a", 0.5)], eta=4) == ["a"]

    def test_pareto_frontier_drops_dominated_points(self):
        points = [
            ("cheap-bad", 100, 0.30),
            ("mid-good", 200, 0.10),
            ("mid-worse", 200, 0.12),  # dominated at equal storage
            ("big-worse", 400, 0.20),  # dominated outright
            ("big-best", 800, 0.05),
        ]
        frontier = pareto_frontier(points)
        assert [p["config"] for p in frontier] == [
            "cheap-bad", "mid-good", "big-best",
        ]
        assert frontier[0]["storage_bits"] == 100


class TestTuneRungDriver:
    def test_cells_one_per_benchmark_and_config(self):
        from repro.evalx.experiments import tune_rung

        configs = ("0-0-0-10(1)/LE", "1-0-5-5(1)/LEH-2")
        cells = tune_rung.cells(
            n_tasks=500, configs=configs, benchmarks=("gcc", "sc")
        )
        assert [cell.label for cell in cells] == [
            "gcc:0-0-0-10(1)/LE",
            "sc:0-0-0-10(1)/LE",
            "gcc:1-0-5-5(1)/LEH-2",
            "sc:1-0-5-5(1)/LEH-2",
        ]

    def test_empty_population_combines_to_empty_report(self):
        from repro.evalx.experiments import tune_rung

        result = tune_rung.combine([], [], n_tasks=500)
        assert result.experiment_id == "tune_rung"
        assert result.text
        assert result.data["grid"] == {}

    def test_rung_runs_and_grids_miss_rates(self):
        configs = ("0-0-0-10(1)/LE", "2-4-5-5(1)/LEH-2")
        result = run_experiment(
            "tune_rung",
            n_tasks=1_000,
            configs=configs,
            benchmarks=("gcc",),
        )
        grid = result.data["grid"]
        for config in configs:
            assert 0.0 <= grid[config]["gcc"] <= 1.0


def _tiny_spec(benchmarks) -> TuneSpec:
    return TuneSpec(
        benchmarks=benchmarks,
        budget=4,
        eta=2,
        rungs=2,
        rung0_tasks=800,
        final_tasks=1_500,
        seed=1,
    )


#: Two workload profiles for the resume byte-identity criterion.
_PROFILES = (("gcc", "compress"), ("sc", "xlisp"))


class TestSearchResumeIdentity:
    """Killed-and-resumed searches replay byte-identically."""

    @pytest.mark.parametrize("benchmarks", _PROFILES)
    def test_resume_after_partial_rung_is_byte_identical(
        self, tmp_path, benchmarks
    ):
        spec = _tiny_spec(benchmarks)
        baseline = dump_artifact(
            run_search(spec, LocalRungRunner())
        )
        ckpt = tmp_path / "ckpt"
        checkpointed = dump_artifact(
            run_search(
                spec,
                LocalRungRunner(
                    checkpoint=CheckpointStore(ckpt, resume=False)
                ),
            )
        )
        assert checkpointed == baseline
        # Simulate a kill mid-search: drop a slice of the completed
        # records (spanning both rungs) and resume from the rest.
        records = sorted(ckpt.glob("*.ckpt.json"))
        assert len(records) >= 8
        for record in records[::3]:
            record.unlink()
        resumed = dump_artifact(
            run_search(
                spec,
                LocalRungRunner(
                    checkpoint=CheckpointStore(ckpt, resume=True)
                ),
            )
        )
        assert resumed == baseline

    def test_artifact_promotions_match_across_jobs_modes(self, tmp_path):
        spec = _tiny_spec(("gcc",))
        serial = run_search(spec, LocalRungRunner())
        pooled = run_search(spec, LocalRungRunner(jobs=2))
        assert dump_artifact(pooled) == dump_artifact(serial)
        assert [r["promoted"] for r in pooled["rungs"]] == [
            r["promoted"] for r in serial["rungs"]
        ]

    def test_report_renders_every_benchmark(self):
        spec = _tiny_spec(("gcc", "compress"))
        artifact = run_search(spec, LocalRungRunner())
        report = render_report(artifact)
        assert "GCC" in report and "COMPRESS" in report
        assert "Final ranking" in report


class TestSearchThroughService:
    """A rung submitted as a service job equals the local rung."""

    def test_service_rung_matches_local(self, tmp_path):
        from repro.evalx.service.coordinator import Coordinator
        from repro.evalx.service.worker import Worker

        spec = _tiny_spec(("gcc",))
        population = initial_population(spec)
        local = run_experiment(
            "tune_rung",
            n_tasks=800,
            configs=tuple(population),
            benchmarks=("gcc",),
        )
        runner = ServiceRungRunner(tmp_path, timeout_seconds=120.0)
        coordinator = Coordinator(tmp_path, n_shards=2)
        import threading

        done = threading.Event()

        def drive():
            while not done.is_set():
                coordinator.run_once()
                Worker(tmp_path, worker_id="w1").serve(
                    poll_seconds=0.01, idle_rounds=1
                )
                time.sleep(0.02)

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        try:
            result = runner.run_rung(800, population, ("gcc",))
        finally:
            done.set()
            thread.join(timeout=10.0)
        assert result.text == local.text
        assert result.data == local.data

    def test_failed_rung_job_raises(self, tmp_path):
        from repro.evalx.service.jobs import JobStore

        runner = ServiceRungRunner(
            tmp_path, timeout_seconds=5.0, poll_seconds=0.01
        )
        # No coordinator is serving: fail the job by hand to check the
        # error path without waiting out the timeout.
        import threading

        def fail_it():
            store = JobStore(tmp_path)
            for _ in range(200):
                jobs = store.list_jobs()
                if jobs:
                    store.update(
                        jobs[0], state="failed", error="no workers"
                    )
                    return
                time.sleep(0.01)

        thread = threading.Thread(target=fail_it, daemon=True)
        thread.start()
        with pytest.raises(TuneError, match="no workers"):
            runner.run_rung(500, ["0-0-0-10(1)/LE"], ("gcc",))
        thread.join(timeout=5.0)


@pytest.mark.slow
class TestKillMidRungResume:
    """SIGKILL a live search mid-rung; --resume must replay it exactly."""

    def test_sigkilled_search_resumes_byte_identically(self, tmp_path):
        args = [
            sys.executable, "-m", "repro.evalx.tune",
            "--benchmarks", "gcc", "compress",
            "--budget", "4", "--eta", "2", "--rungs", "2",
            "--rung0-tasks", "800", "--final-tasks", "1500",
            "--seed", "1", "--jobs", "2",
        ]
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        clean_ckpt = tmp_path / "clean-ckpt"
        clean_out = tmp_path / "clean.json"
        subprocess.run(
            [*args, "--checkpoint-dir", str(clean_ckpt),
             "--out", str(clean_out)],
            env=env, check=True, capture_output=True, timeout=300,
        )
        ckpt = tmp_path / "ckpt"
        victim = subprocess.Popen(
            [*args, "--checkpoint-dir", str(ckpt),
             "--out", str(tmp_path / "never.json")],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if len(list(ckpt.glob("*.ckpt.json"))) >= 3:
                    break
                if victim.poll() is not None:
                    pytest.fail("search finished before it was killed")
                time.sleep(0.02)
            else:
                pytest.fail("no checkpoint records appeared")
        finally:
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
        assert not (tmp_path / "never.json").exists()
        resumed_out = tmp_path / "resumed.json"
        subprocess.run(
            [*args, "--checkpoint-dir", str(ckpt), "--resume",
             "--out", str(resumed_out)],
            env=env, check=True, capture_output=True, timeout=300,
        )
        assert resumed_out.read_bytes() == clean_out.read_bytes()
        artifact = json.loads(resumed_out.read_text())
        clean = json.loads(clean_out.read_text())
        assert [r["promoted"] for r in artifact["rungs"]] == [
            r["promoted"] for r in clean["rungs"]
        ]
