"""Tests for the repro.analysis static-analysis pass.

Each rule family gets fixture snippets exercised both ways: code that
must be flagged and near-identical code that must stay clean. On top of
that: suppression comments, baseline semantics (matching, staleness,
justification requirement), the JSON report schema, CLI exit codes, and
the self-check that the repository's own source tree analyses clean
against the committed baseline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, BaselineEntry, Finding, all_rules
from repro.analysis.core import run_analysis
from repro.analysis.__main__ import main as analysis_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def _project(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialize fixture files (auto-creating package __init__.py)."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        for parent in path.relative_to(tmp_path).parents:
            if str(parent) != ".":
                (tmp_path / parent / "__init__.py").touch()
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def _run(tmp_path: Path, rules: list[str] | None = None):
    findings, suppressed = run_analysis([tmp_path], tmp_path, rules)
    return findings, suppressed


def _rule_ids(findings: list[Finding]) -> list[str]:
    return [f.rule for f in findings]


class TestRuleRegistry:
    def test_all_rules_register_once(self):
        rules = all_rules()
        ids = [rule.id for rule in rules]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        assert set(ids) == {
            "CKP001", "CKP002",
            "DET001", "DET002", "DET003", "DET004",
            "ENV001", "ENV002",
            "FS001", "FS002", "FS003", "FS004",
            "LSE001", "LSE002", "LSE003",
            "NPW001", "NPW002", "NPW003",
            "PROT001", "PROT002", "PROT003",
            "PUR001", "PUR002",
            "VEC001", "VEC002",
        }

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.title, rule.id
            assert rule.rationale, rule.id


class TestDeterminismRules:
    def test_flags_global_random_wallclock_and_set_iteration(self, tmp_path):
        _project(tmp_path, {
            "sim/kernel.py": """\
                import random
                import time
                import numpy as np


                def draw():
                    return random.random()


                def legacy():
                    return np.random.rand(4)


                def stamp():
                    return time.time()


                def order():
                    items = {1, 2, 3}
                    return [x for x in items]
                """,
        })
        findings, _ = _run(tmp_path)
        assert _rule_ids(findings) == [
            "DET001", "DET002", "DET003", "DET004"
        ]
        by_rule = {f.rule: f for f in findings}
        assert by_rule["DET001"].symbol == "draw"
        assert by_rule["DET003"].symbol == "stamp"
        assert by_rule["DET004"].symbol == "order"

    def test_clean_equivalents_pass(self, tmp_path):
        _project(tmp_path, {
            "sim/kernel.py": """\
                import numpy as np


                def draw(rng):
                    return rng.random()


                def modern(seed):
                    return np.random.default_rng(seed).integers(0, 4)


                def order():
                    items = {3, 1}
                    return sorted(items)
                """,
        })
        findings, _ = _run(tmp_path)
        assert findings == []

    def test_scope_excludes_non_simulation_code(self, tmp_path):
        _project(tmp_path, {
            "harness/clock.py": """\
                import time


                def stamp():
                    return time.time()
                """,
        })
        findings, _ = _run(tmp_path)
        assert findings == []


class TestPurityRules:
    def test_flags_global_mutation_reachable_from_cell_fn(self, tmp_path):
        _project(tmp_path, {
            "cellsmod.py": """\
                from repro.evalx.parallel import Cell

                _CACHE = {}


                def _impure(x):
                    _CACHE[x] = x
                    return x


                def _pure(x):
                    local = {}
                    local[x] = x
                    return x


                def cells():
                    return [
                        Cell(label="a", fn=_impure, kwargs={}),
                        Cell(label="b", fn=_pure, kwargs={}),
                    ]
                """,
        })
        findings, _ = _run(tmp_path, ["PUR001"])
        assert len(findings) == 1
        assert findings[0].symbol == "_CACHE"
        assert findings[0].line == 3  # anchored at the global's definition

    def test_flags_transitive_mutation_through_helper(self, tmp_path):
        _project(tmp_path, {
            "cellsmod.py": """\
                from repro.evalx.parallel import Cell

                _MEMO = {}


                def _helper(x):
                    _MEMO.setdefault(x, x)
                    return _MEMO[x]


                def _cell(x):
                    return _helper(x)


                def cells():
                    return [Cell(label="a", fn=_cell, kwargs={})]
                """,
        })
        findings, _ = _run(tmp_path, ["PUR001"])
        assert [f.symbol for f in findings] == ["_MEMO"]

    def test_flags_unpicklable_cell_callables(self, tmp_path):
        _project(tmp_path, {
            "cellsmod.py": """\
                from repro.evalx.parallel import Cell


                def cells():
                    def inner(x):
                        return x
                    return [
                        Cell(label="a", fn=lambda x: x, kwargs={}),
                        Cell(label="b", fn=inner, kwargs={}),
                    ]
                """,
        })
        findings, _ = _run(tmp_path, ["PUR002"])
        assert len(findings) == 2

    def test_module_level_fn_with_local_state_passes(self, tmp_path):
        _project(tmp_path, {
            "cellsmod.py": """\
                from repro.evalx.parallel import Cell


                def _cell(x):
                    acc = []
                    acc.append(x)
                    return acc


                def cells():
                    return [Cell(label="a", fn=_cell, kwargs={})]
                """,
        })
        findings, _ = _run(tmp_path, ["PUR001", "PUR002"])
        assert findings == []


class TestProtocolRules:
    _REGISTRY = """\
        EXPERIMENT_IDS = ("good", "monolith", "fragile")
        ALL_IDS = EXPERIMENT_IDS + ("summary",)
        """
    _GOOD = """\
        from repro.evalx.parallel import Cell, is_failure


        def _cell(x):
            return x


        def cells(n_tasks=None, quick=False):
            return [Cell(label="a", fn=_cell, kwargs={})]


        def combine(cells, results, n_tasks=None, quick=False):
            return [None if is_failure(r) else r for r in results]
        """

    def test_conformant_driver_passes(self, tmp_path):
        _project(tmp_path, {
            "pkg/registry.py": self._REGISTRY,
            "pkg/experiments/good.py": self._GOOD,
        })
        findings, _ = _run(tmp_path)
        assert findings == []

    def test_unregistered_driver_flagged(self, tmp_path):
        _project(tmp_path, {
            "pkg/registry.py": self._REGISTRY,
            "pkg/experiments/rogue.py": self._GOOD,
        })
        findings, _ = _run(tmp_path, ["PROT001"])
        assert [f.symbol for f in findings] == ["rogue"]

    def test_monolithic_run_driver_flagged(self, tmp_path):
        _project(tmp_path, {
            "pkg/registry.py": self._REGISTRY,
            "pkg/experiments/monolith.py": """\
                def run(n_tasks=None, quick=False):
                    return 42
                """,
        })
        findings, _ = _run(tmp_path, ["PROT002"])
        assert [f.symbol for f in findings] == ["monolith"]

    def test_combine_without_failure_handling_flagged(self, tmp_path):
        _project(tmp_path, {
            "pkg/registry.py": self._REGISTRY,
            "pkg/experiments/fragile.py": """\
                from repro.evalx.parallel import Cell


                def _cell(x):
                    return x


                def cells(n_tasks=None, quick=False):
                    return [Cell(label="a", fn=_cell, kwargs={})]


                def combine(cells, results, n_tasks=None, quick=False):
                    return sum(results)
                """,
        })
        findings, _ = _run(tmp_path, ["PROT003"])
        assert [f.symbol for f in findings] == ["fragile.combine"]

    def test_failure_check_through_local_helper_accepted(self, tmp_path):
        _project(tmp_path, {
            "pkg/registry.py": self._REGISTRY,
            "pkg/experiments/good.py": """\
                from repro.evalx.parallel import Cell, is_failure


                def _cell(x):
                    return x


                def _gap(r):
                    return None if is_failure(r) else r


                def cells(n_tasks=None, quick=False):
                    return [Cell(label="a", fn=_cell, kwargs={})]


                def combine(cells, results, n_tasks=None, quick=False):
                    return [_gap(r) for r in results]
                """,
        })
        findings, _ = _run(tmp_path, ["PROT003"])
        assert findings == []

    def test_common_and_private_modules_exempt(self, tmp_path):
        _project(tmp_path, {
            "pkg/registry.py": self._REGISTRY,
            "pkg/experiments/common.py": "HELPER = 1\n",
            "pkg/experiments/_util.py": "def helper():\n    return 1\n",
        })
        findings, _ = _run(tmp_path)
        assert findings == []


class TestBitwidthRules:
    def test_narrow_shift_and_bare_reduction_flagged(self, tmp_path):
        _project(tmp_path, {
            "kernels.py": """\
                import numpy as np


                def pack(n):
                    codes = np.zeros(n, dtype=np.int16)
                    return codes << 3


                def count(n):
                    mask = np.zeros(n, dtype=bool)
                    return np.cumsum(mask)
                """,
        })
        findings, _ = _run(tmp_path, ["NPW001", "NPW002"])
        assert _rule_ids(findings) == ["NPW001", "NPW002"]

    def test_wide_dtype_and_explicit_accumulator_pass(self, tmp_path):
        _project(tmp_path, {
            "kernels.py": """\
                import numpy as np


                def pack(n):
                    codes = np.zeros(n, dtype=np.int64)
                    return codes << 3


                def count(n):
                    mask = np.zeros(n, dtype=bool)
                    return np.cumsum(mask, dtype=np.int64)
                """,
        })
        findings, _ = _run(tmp_path, ["NPW001", "NPW002"])
        assert findings == []

    def test_unguarded_variable_shift_flagged(self, tmp_path):
        _project(tmp_path, {
            "kernels.py": """\
                import numpy as np


                def pack(values, bits):
                    word = np.asarray(values, dtype=np.int64)
                    return word << bits
                """,
        })
        findings, _ = _run(tmp_path, ["NPW003"])
        assert _rule_ids(findings) == ["NPW003"]

    def test_width_guard_silences_variable_shift(self, tmp_path):
        _project(tmp_path, {
            "kernels.py": """\
                import numpy as np


                def pack(values, bits, used):
                    word = np.asarray(values, dtype=np.int64)
                    if used + bits > 62:
                        raise ValueError("word overflow")
                    return word << bits
                """,
        })
        findings, _ = _run(tmp_path, ["NPW003"])
        assert findings == []


class TestCheckpointRules:
    def test_unfingerprintable_cell_kwargs_flagged(self, tmp_path):
        _project(tmp_path, {
            "evalx/experiments/driver.py": """\
                from repro.evalx.parallel import Cell


                def cells(n_tasks=None, quick=False):
                    return [
                        Cell(
                            label="bad-set",
                            fn=print,
                            kwargs={"names": {"a", "b"}},
                        ),
                        Cell(
                            label="bad-key",
                            fn=print,
                            kwargs={"table": {1: "x"}},
                        ),
                        Cell(
                            label="bad-lambda",
                            fn=print,
                            kwargs={"hook": lambda: 0},
                        ),
                    ]
                """,
        })
        findings, _ = _run(tmp_path, ["CKP001"])
        assert _rule_ids(findings) == ["CKP001"] * 3
        assert "never be checkpointed" in findings[0].message

    def test_canonical_cell_kwargs_pass(self, tmp_path):
        _project(tmp_path, {
            "evalx/experiments/driver.py": """\
                from repro.evalx.parallel import Cell


                def cells(n_tasks=None, quick=False):
                    widths = [64, 256, 1024]
                    return [
                        Cell(
                            label="ok",
                            fn=print,
                            kwargs={
                                "name": "gcc",
                                "tasks": n_tasks,
                                "widths": widths,
                                "nested": {"a": (1, 2.5, None)},
                            },
                        ),
                    ]
                """,
        })
        findings, _ = _run(tmp_path, ["CKP001"])
        assert findings == []

    def test_cell_outside_experiments_scope_not_scanned(self, tmp_path):
        _project(tmp_path, {
            "helpers/build.py": """\
                from repro.evalx.parallel import Cell

                CELL = Cell(label="x", fn=print, kwargs={"s": {1, 2}})
                """,
        })
        findings, _ = _run(tmp_path, ["CKP001"])
        assert findings == []

    def test_fault_install_outside_optin_flagged(self, tmp_path):
        _project(tmp_path, {
            "evalx/experiments/sneaky.py": """\
                import os

                from repro.evalx import faults


                def arm(plan):
                    faults.install(plan)


                def arm_by_env(raw):
                    os.environ["REPRO_FAULTS"] = raw
                """,
        })
        findings, _ = _run(tmp_path, ["CKP002"])
        assert _rule_ids(findings) == ["CKP002", "CKP002"]
        assert "arms the chaos injector" in findings[0].message

    def test_fault_install_in_sanctioned_modules_passes(self, tmp_path):
        _project(tmp_path, {
            "repro/evalx/faults.py": """\
                import os


                def install(plan):
                    os.environ["REPRO_FAULTS"] = plan
                """,
            "repro/evalx/__main__.py": """\
                from repro.evalx import faults


                def main(plan):
                    faults.install(plan)
                """,
        })
        findings, _ = _run(tmp_path, ["CKP002"])
        assert findings == []

    def test_other_environ_assignments_pass(self, tmp_path):
        _project(tmp_path, {
            "evalx/parallel.py": """\
                import os


                def publish(directory):
                    os.environ["REPRO_CHECKPOINT_DIR"] = directory
                """,
        })
        findings, _ = _run(tmp_path, ["CKP002"])
        assert findings == []


class TestVectorizationRules:
    def test_scalar_loop_in_vectorized_module_flagged(self, tmp_path):
        _project(tmp_path, {
            "sim/kernel.py": """\
                import numpy as np


                def simulate(trace, vectorize=True):
                    state = np.zeros(len(trace), dtype=np.int64)
                    for i in range(1, len(trace)):
                        state[i] = state[i - 1] + 1
                    return state
                """,
        })
        findings, _ = _run(tmp_path, ["VEC001"])
        assert _rule_ids(findings) == ["VEC001"]
        assert "per-element Python loop" in findings[0].message

    def test_direct_ndarray_iteration_flagged(self, tmp_path):
        _project(tmp_path, {
            "sim/kernel.py": """\
                import numpy as np


                def simulate(trace, vectorize=True):
                    exits = np.asarray(trace, dtype=np.int64)
                    total = 0
                    for exit_index in exits:
                        total += int(exit_index)
                    return total
                """,
        })
        findings, _ = _run(tmp_path, ["VEC001"])
        assert _rule_ids(findings) == ["VEC001"]

    def test_tolist_scalar_path_and_lag_loops_pass(self, tmp_path):
        _project(tmp_path, {
            "sim/kernel.py": """\
                import numpy as np


                def simulate(trace, vectorize=True):
                    arr = np.asarray(trace, dtype=np.int64)
                    # Sanctioned scalar reference path: plain Python list.
                    total = 0
                    for value in arr.tolist():
                        total += value
                    # Loop over lags: whole-column work per iteration.
                    windows = np.zeros((4, len(arr)), dtype=np.int64)
                    for lag in range(1, 4):
                        windows[lag, lag:] = arr[: len(arr) - lag]
                    mask = arr > 0
                    for k in range(4):
                        windows[k][mask] = 0
                    return total, windows
                """,
        })
        findings, _ = _run(tmp_path, ["VEC001"])
        assert findings == []

    def test_module_without_vectorize_claim_not_scanned(self, tmp_path):
        _project(tmp_path, {
            "tools/report.py": """\
                import numpy as np


                def tally(values):
                    arr = np.asarray(values, dtype=np.int64)
                    out = np.zeros(len(arr), dtype=np.int64)
                    for i in range(len(arr)):
                        out[i] = arr[i] * 2
                    return out
                """,
        })
        findings, _ = _run(tmp_path, ["VEC001"])
        assert findings == []

    def test_docstring_claim_triggers_scan(self, tmp_path):
        _project(tmp_path, {
            "sim/kernel.py": '''\
                """Vectorized replay kernels for the batched path."""
                import numpy as np


                def replay(codes):
                    state = np.zeros(len(codes), dtype=np.int64)
                    for i in range(1, len(codes)):
                        state[i] = state[i - 1] ^ 1
                    return state
                ''',
        })
        findings, _ = _run(tmp_path, ["VEC001"])
        assert _rule_ids(findings) == ["VEC001"]

    def test_narrowing_column_store_flagged(self, tmp_path):
        _project(tmp_path, {
            "predictors/columns.py": """\
                import numpy as np


                def pack(rows, keys):
                    column = np.zeros(64, dtype=np.int16)
                    wide = np.asarray(keys, dtype=np.int64)
                    column[rows] = wide << 3
                    return column
                """,
        })
        findings, _ = _run(tmp_path, ["VEC002"])
        assert _rule_ids(findings) == ["VEC002"]
        assert "truncates" in findings[0].message

    def test_wide_column_store_passes(self, tmp_path):
        _project(tmp_path, {
            "predictors/columns.py": """\
                import numpy as np


                def pack(rows, keys):
                    column = np.zeros(64, dtype=np.int64)
                    wide = np.asarray(keys, dtype=np.int64)
                    column[rows] = wide << 3
                    narrow = np.zeros(64, dtype=np.int8)
                    narrow[rows] = np.zeros(len(rows), dtype=np.int8)
                    return column, narrow
                """,
        })
        findings, _ = _run(tmp_path, ["VEC002"])
        assert findings == []


class TestAtomicityRules:
    def test_direct_write_to_shared_path_flagged(self, tmp_path):
        _project(tmp_path, {
            "evalx/store.py": """\
                def publish(store, cell, text):
                    path = store.path_for(cell)
                    path.write_text(text)
                """,
        })
        findings, _ = _run(tmp_path, ["FS001"])
        assert _rule_ids(findings) == ["FS001"]
        assert findings[0].symbol == "publish"

    def test_tmp_plus_replace_idiom_passes(self, tmp_path):
        _project(tmp_path, {
            "evalx/store.py": """\
                import os


                def publish(store, cell, text):
                    path = store.path_for(cell)
                    tmp = path.with_name(f".{cell}.tmp-{os.getpid()}")
                    tmp.write_text(text)
                    os.replace(tmp, path)
                """,
        })
        findings, _ = _run(tmp_path, ["FS001", "FS004"])
        assert findings == []

    def test_exclusive_create_for_claim_files_passes(self, tmp_path):
        _project(tmp_path, {
            "evalx/leases.py": """\
                def claim(store, cell):
                    path = store.lease_path_for(cell)
                    with open(path, "x") as handle:
                        handle.write("claimed")
                """,
        })
        findings, _ = _run(tmp_path, ["FS001"])
        assert findings == []

    def test_replace_without_fsync_flagged_in_durable_modules(
        self, tmp_path
    ):
        _project(tmp_path, {
            "evalx/checkpoint.py": """\
                import json
                import os


                def save(store, cell, record):
                    path = store.path_for(cell)
                    tmp = path.with_name(f".{cell}.tmp-{os.getpid()}")
                    tmp.write_text(json.dumps(record))
                    os.replace(tmp, path)
                """,
        })
        findings, _ = _run(tmp_path, ["FS002"])
        assert _rule_ids(findings) == ["FS002"]
        assert "fsync" in findings[0].message

    def test_fsynced_replace_passes(self, tmp_path):
        _project(tmp_path, {
            "evalx/checkpoint.py": """\
                import json
                import os


                def save(store, cell, record):
                    path = store.path_for(cell)
                    tmp = path.with_name(f".{cell}.tmp-{os.getpid()}")
                    with open(tmp, "w") as handle:
                        handle.write(json.dumps(record))
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(tmp, path)
                """,
        })
        findings, _ = _run(tmp_path, ["FS002"])
        assert findings == []

    def test_fsync_through_project_helper_passes(self, tmp_path):
        _project(tmp_path, {
            "evalx/checkpoint.py": """\
                import json
                import os

                from evalx.fsio import fsync_write_text


                def save(store, cell, record):
                    path = store.path_for(cell)
                    tmp = path.with_name(f".{cell}.tmp-{os.getpid()}")
                    fsync_write_text(tmp, json.dumps(record))
                    os.replace(tmp, path)
                """,
            "evalx/fsio.py": """\
                import os


                def fsync_write_text(path, text):
                    with open(path, "w") as handle:
                        handle.write(text)
                        handle.flush()
                        os.fsync(handle.fileno())
                """,
        })
        findings, _ = _run(tmp_path, ["FS002"])
        assert findings == []

    def test_fsync_outside_durable_scope_not_required(self, tmp_path):
        # The trace cache is checksummed + regenerated; FS002's scope
        # excludes it even though FS001/FS004 still apply.
        _project(tmp_path, {
            "evalx/tracecache.py": """\
                import os


                def save(store, cell, text):
                    path = store.path_for(cell)
                    tmp = path.with_name(f".{cell}.tmp-{os.getpid()}")
                    tmp.write_text(text)
                    os.replace(tmp, path)
                """,
        })
        findings, _ = _run(tmp_path, ["FS002"])
        assert findings == []

    def test_read_modify_write_without_lease_flagged(self, tmp_path):
        _project(tmp_path, {
            "evalx/registry.py": """\
                import json


                def bump(store, cell):
                    path = store.path_for(cell)
                    data = json.loads(path.read_text())
                    data["count"] += 1
                    path.write_text(json.dumps(data))
                """,
        })
        findings, _ = _run(tmp_path, ["FS003"])
        assert _rule_ids(findings) == ["FS003"]

    def test_read_modify_write_under_lease_passes(self, tmp_path):
        _project(tmp_path, {
            "evalx/registry.py": """\
                import json


                def bump(store, queue, cell):
                    queue.renew(cell)
                    path = store.path_for(cell)
                    data = json.loads(path.read_text())
                    data["count"] += 1
                    path.write_text(json.dumps(data))
                """,
        })
        findings, _ = _run(tmp_path, ["FS003"])
        assert findings == []

    def test_replace_from_unknown_source_flagged(self, tmp_path):
        _project(tmp_path, {
            "evalx/store.py": """\
                import os


                def publish(store, cell, src):
                    path = store.path_for(cell)
                    os.replace(src, path)
                """,
        })
        findings, _ = _run(tmp_path, ["FS004"])
        assert _rule_ids(findings) == ["FS004"]
        assert "sibling temp" in findings[0].message

    def test_replace_from_shared_temp_name_flagged_as_non_pid(
        self, tmp_path
    ):
        _project(tmp_path, {
            "evalx/store.py": """\
                import os


                def publish(store, cell, text):
                    path = store.path_for(cell)
                    tmp = path.with_name(".record.tmp")
                    tmp.write_text(text)
                    os.replace(tmp, path)
                """,
        })
        findings, _ = _run(tmp_path, ["FS004"])
        assert _rule_ids(findings) == ["FS004"]
        assert "pid" in findings[0].message

    def test_fs_rules_scoped_to_service_code(self, tmp_path):
        _project(tmp_path, {
            "scripts/report.py": """\
                def publish(store, cell, text):
                    path = store.path_for(cell)
                    path.write_text(text)
                """,
        })
        findings, _ = _run(
            tmp_path, ["FS001", "FS002", "FS003", "FS004"]
        )
        assert findings == []


class TestLeaseRules:
    def test_publish_without_reconfirm_flagged(self, tmp_path):
        _project(tmp_path, {
            "evalx/worker.py": """\
                def execute(store, cell):
                    result = _run_cell_instrumented(cell)
                    store.save(cell, result)
                """,
        })
        findings, _ = _run(tmp_path, ["LSE001"])
        assert _rule_ids(findings) == ["LSE001"]
        assert findings[0].symbol == "execute"

    def test_lost_event_guard_confirms_ownership(self, tmp_path):
        _project(tmp_path, {
            "evalx/worker.py": """\
                def execute(store, cell, lost):
                    result = _run_cell_instrumented(cell)
                    if lost.is_set():
                        return
                    store.save(cell, result)
                """,
        })
        findings, _ = _run(tmp_path, ["LSE001"])
        assert findings == []

    def test_truthy_renew_confirms_ownership(self, tmp_path):
        _project(tmp_path, {
            "evalx/worker.py": """\
                def execute(store, queue, cell):
                    result = _run_cell_instrumented(cell)
                    if queue.renew(cell):
                        store.save(cell, result)
                """,
        })
        findings, _ = _run(tmp_path, ["LSE001"])
        assert findings == []

    def test_guard_on_one_path_only_still_flagged(self, tmp_path):
        # The unguarded except arm may publish with a stolen lease.
        _project(tmp_path, {
            "evalx/worker.py": """\
                def execute(store, queue, cell, lost):
                    result = _run_cell_instrumented(cell)
                    try:
                        value = result.unwrap()
                    except ValueError:
                        queue.write_fail(cell)
                        return
                    if lost.is_set():
                        return
                    store.save(cell, value)
                """,
        })
        findings, _ = _run(tmp_path, ["LSE001"])
        assert _rule_ids(findings) == ["LSE001"]
        # The flagged publication is the unguarded fail marker.
        assert findings[0].line == 6

    def test_release_before_publish_flagged(self, tmp_path):
        _project(tmp_path, {
            "evalx/worker.py": """\
                def finish(store, queue, cell, result):
                    queue.release(cell)
                    store.save(cell, result)
                """,
        })
        findings, _ = _run(tmp_path, ["LSE002"])
        assert _rule_ids(findings) == ["LSE002"]

    def test_publish_then_release_passes(self, tmp_path):
        _project(tmp_path, {
            "evalx/worker.py": """\
                def finish(store, queue, cell, result):
                    try:
                        store.save(cell, result)
                    finally:
                        queue.release(cell)
                """,
        })
        findings, _ = _run(tmp_path, ["LSE002"])
        assert findings == []

    def test_renew_outside_heartbeat_thread_flagged(self, tmp_path):
        _project(tmp_path, {
            "evalx/worker.py": """\
                def tick(queue, cell):
                    queue.renew(cell)
                """,
        })
        findings, _ = _run(tmp_path, ["LSE003"])
        assert _rule_ids(findings) == ["LSE003"]

    def test_renew_inside_registered_heartbeat_passes(self, tmp_path):
        _project(tmp_path, {
            "evalx/worker.py": """\
                import threading


                class Worker:
                    def start(self):
                        thread = threading.Thread(
                            target=self._heartbeat, daemon=True
                        )
                        thread.start()

                    def _heartbeat(self):
                        self.queue.renew(self.cell)
                """,
        })
        findings, _ = _run(tmp_path, ["LSE003"])
        assert findings == []


class TestEnvOrderRules:
    def test_handoff_mutated_between_submits_flagged(self, tmp_path):
        _project(tmp_path, {
            "evalx/driver.py": """\
                import os


                def sweep(executor, run, cells, plan):
                    os.environ["REPRO_FAULTS"] = plan
                    executor.submit(run, cells[0])
                    os.environ["REPRO_FAULTS"] = "other"
                    executor.submit(run, cells[1])
                """,
        })
        findings, _ = _run(tmp_path, ["ENV001"])
        assert _rule_ids(findings) == ["ENV001"]
        assert findings[0].line == 7

    def test_restore_after_last_submit_passes(self, tmp_path):
        _project(tmp_path, {
            "evalx/driver.py": """\
                import os


                def sweep(executor, run, cells, plan):
                    previous = os.environ.get("REPRO_FAULTS")
                    os.environ["REPRO_FAULTS"] = plan
                    try:
                        for cell in cells:
                            executor.submit(run, cell)
                    finally:
                        if previous is None:
                            os.environ.pop("REPRO_FAULTS", None)
                        else:
                            os.environ["REPRO_FAULTS"] = previous
                """,
        })
        findings, _ = _run(tmp_path, ["ENV001"])
        assert findings == []

    def test_arming_without_restore_flagged(self, tmp_path):
        _project(tmp_path, {
            "evalx/driver.py": """\
                import os


                def arm(plan):
                    os.environ["REPRO_FAULTS"] = plan
                """,
        })
        findings, _ = _run(tmp_path, ["ENV002"])
        assert _rule_ids(findings) == ["ENV002"]
        assert "REPRO_FAULTS" in findings[0].message

    def test_arming_with_reachable_restore_passes(self, tmp_path):
        _project(tmp_path, {
            "evalx/driver.py": """\
                import os


                def run_with_plan(run, plan):
                    previous = os.environ.get("REPRO_FAULTS")
                    os.environ["REPRO_FAULTS"] = plan
                    try:
                        run()
                    finally:
                        if previous is None:
                            os.environ.pop("REPRO_FAULTS", None)
                        else:
                            os.environ["REPRO_FAULTS"] = previous
                """,
        })
        findings, _ = _run(tmp_path, ["ENV002"])
        assert findings == []

    def test_constant_alias_resolves_to_handoff_key(self, tmp_path):
        _project(tmp_path, {
            "evalx/driver.py": """\
                import os

                CHECKPOINT_ENV = "REPRO_CHECKPOINT_DIR"


                def arm(path):
                    os.environ[CHECKPOINT_ENV] = str(path)
                """,
        })
        findings, _ = _run(tmp_path, ["ENV002"])
        assert _rule_ids(findings) == ["ENV002"]
        assert "REPRO_CHECKPOINT_DIR" in findings[0].message

    def test_arming_modules_are_exempt(self, tmp_path):
        _project(tmp_path, {
            "evalx/faults.py": """\
                import os


                def install(plan):
                    os.environ["REPRO_FAULTS"] = plan
                """,
        })
        findings, _ = _run(tmp_path, ["ENV002"])
        assert findings == []

    def test_other_env_vars_ignored(self, tmp_path):
        _project(tmp_path, {
            "evalx/driver.py": """\
                import os


                def arm():
                    os.environ["PYTHONHASHSEED"] = "0"
                """,
        })
        findings, _ = _run(tmp_path, ["ENV001", "ENV002"])
        assert findings == []


class TestSuppressions:
    def test_targeted_noqa_suppresses_only_that_rule(self, tmp_path):
        _project(tmp_path, {
            "sim/kernel.py": """\
                import random


                def draw():
                    return random.random()  # repro: noqa[DET001]


                def draw_again():
                    return random.random()
                """,
        })
        findings, suppressed = _run(tmp_path)
        assert suppressed == 1
        assert [f.symbol for f in findings] == ["draw_again"]

    def test_bare_noqa_suppresses_every_rule(self, tmp_path):
        _project(tmp_path, {
            "sim/kernel.py": """\
                import time


                def stamp():
                    return time.time()  # repro: noqa
                """,
        })
        findings, suppressed = _run(tmp_path)
        assert findings == []
        assert suppressed == 1

    def test_noqa_for_a_different_rule_does_not_suppress(self, tmp_path):
        _project(tmp_path, {
            "sim/kernel.py": """\
                import time


                def stamp():
                    return time.time()  # repro: noqa[DET001]
                """,
        })
        findings, suppressed = _run(tmp_path)
        assert _rule_ids(findings) == ["DET003"]
        assert suppressed == 0


class TestBaseline:
    def _finding(self, **overrides):
        base = dict(
            rule="DET003", path="sim/kernel.py", line=7, col=4,
            message="wall clock", symbol="stamp",
        )
        base.update(overrides)
        return Finding(**base)

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.entries == []
        assert not baseline.matches(self._finding())

    def test_write_load_round_trip_matches_by_symbol(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(path, [self._finding()], justification="reviewed")
        baseline = Baseline.load(path)
        # Line numbers may drift; (rule, path, symbol) still matches.
        assert baseline.matches(self._finding(line=99))
        assert not baseline.matches(self._finding(rule="DET001"))
        assert baseline.stale_entries() == []

    def test_unmatched_entries_reported_stale(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(
            path,
            [self._finding(), self._finding(symbol="gone")],
            justification="reviewed",
        )
        baseline = Baseline.load(path)
        assert baseline.matches(self._finding())
        assert [e.symbol for e in baseline.stale_entries()] == ["gone"]

    def test_empty_justification_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "DET003", "path": "sim/kernel.py",
                "symbol": "stamp", "justification": "   ",
            }],
        }))
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_entry_key_is_rule_path_symbol(self):
        entry = BaselineEntry(
            rule="PUR001", path="a.py", symbol="_CACHE",
            justification="memo",
        )
        assert entry.key == ("PUR001", "a.py", "_CACHE")


class TestCli:
    def _fixture(self, tmp_path):
        return _project(tmp_path, {
            "sim/kernel.py": """\
                import time


                def stamp():
                    return time.time()
                """,
        })

    def test_findings_exit_1_and_json_schema(self, tmp_path, capsys):
        root = self._fixture(tmp_path)
        report_path = tmp_path / "report.json"
        code = analysis_main([
            "--root", str(root), "--format", "json",
            "--output", str(report_path), "sim",
        ])
        assert code == 1
        report = json.loads(report_path.read_text())
        assert set(report) == {
            "version", "rules", "findings", "counts", "stale_baseline"
        }
        assert report["version"] == 1
        assert {r["id"] for r in report["rules"]} == {
            rule.id for rule in all_rules()
        }
        (finding,) = report["findings"]
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "symbol"
        }
        assert finding["rule"] == "DET003"
        assert finding["path"] == "sim/kernel.py"
        assert report["counts"] == {
            "findings": 1, "baselined": 0, "suppressed": 0,
            "stale_baseline": 0,
        }

    def test_baselined_findings_exit_0(self, tmp_path, capsys):
        root = self._fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "DET003", "path": "sim/kernel.py",
                "symbol": "stamp",
                "justification": "fixture: intentional clock read",
            }],
        }))
        code = analysis_main([
            "--root", str(root), "--baseline", str(baseline), "sim",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 finding(s), 1 baselined" in out

    def test_no_baseline_flag_reports_accepted_findings(
        self, tmp_path, capsys
    ):
        root = self._fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "DET003", "path": "sim/kernel.py",
                "symbol": "stamp", "justification": "fixture",
            }],
        }))
        code = analysis_main([
            "--root", str(root), "--baseline", str(baseline),
            "--no-baseline", "sim",
        ])
        assert code == 1

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        root = self._fixture(tmp_path)
        code = analysis_main([
            "--root", str(root), "--rules", "NOPE999", "sim",
        ])
        assert code == 2

    def test_missing_path_exits_2(self, tmp_path, capsys):
        code = analysis_main(["--root", str(tmp_path), "no/such/dir"])
        assert code == 2

    def test_list_rules_exits_0(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out

    def test_sarif_output_schema(self, tmp_path, capsys):
        root = self._fixture(tmp_path)
        sarif_path = tmp_path / "report.sarif"
        code = analysis_main([
            "--root", str(root), "--format", "sarif",
            "--output", str(sarif_path), "sim",
        ])
        assert code == 1
        sarif = json.loads(sarif_path.read_text())
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-analysis"
        assert {r["id"] for r in driver["rules"]} == {
            rule.id for rule in all_rules()
        }
        (result,) = run["results"]
        assert result["ruleId"] == "DET003"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "sim/kernel.py"
        assert location["region"]["startLine"] > 0
        assert location["region"]["startColumn"] > 0
        fingerprint = result["partialFingerprints"][
            "reproAnalysisSymbol/v1"
        ]
        assert fingerprint == "DET003:sim/kernel.py:stamp"

    def test_sarif_without_output_prints_to_stdout(
        self, tmp_path, capsys
    ):
        root = self._fixture(tmp_path)
        analysis_main([
            "--root", str(root), "--format", "sarif", "sim",
        ])
        out = capsys.readouterr().out
        assert json.loads(out)["version"] == "2.1.0"

    def test_stale_baseline_entry_exits_1(self, tmp_path, capsys):
        root = self._fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [
                {
                    "rule": "DET003", "path": "sim/kernel.py",
                    "symbol": "stamp",
                    "justification": "fixture: intentional clock read",
                },
                {
                    "rule": "FS001", "path": "sim/gone.py",
                    "symbol": "removed_long_ago",
                    "justification": "fixture: the violation was fixed",
                },
            ],
        }))
        code = analysis_main([
            "--root", str(root), "--baseline", str(baseline), "sim",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "stale baseline entry" in err
        assert "removed_long_ago" in err

    def test_prune_stale_rewrites_baseline_and_exits_0(
        self, tmp_path, capsys
    ):
        root = self._fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [
                {
                    "rule": "DET003", "path": "sim/kernel.py",
                    "symbol": "stamp",
                    "justification": "fixture: intentional clock read",
                },
                {
                    "rule": "FS001", "path": "sim/gone.py",
                    "symbol": "removed_long_ago",
                    "justification": "fixture: the violation was fixed",
                },
            ],
        }))
        code = analysis_main([
            "--root", str(root), "--baseline", str(baseline),
            "--prune-stale", "sim",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "pruned 1 stale baseline entry" in err
        payload = json.loads(baseline.read_text())
        (entry,) = payload["entries"]
        # The live entry survives with its justification intact.
        assert entry["symbol"] == "stamp"
        assert entry["justification"] == (
            "fixture: intentional clock read"
        )

    def test_write_baseline_bootstraps_file(self, tmp_path, capsys):
        root = self._fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        code = analysis_main([
            "--root", str(root), "--baseline", str(baseline),
            "--write-baseline", "sim",
        ])
        assert code == 0
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1
        (entry,) = payload["entries"]
        assert entry["rule"] == "DET003"
        assert entry["symbol"] == "stamp"


class TestRepoSelfCheck:
    def test_repository_source_analyses_clean(self, capsys):
        """The committed tree passes against the committed baseline."""
        code = analysis_main(["--root", str(REPO_ROOT)])
        out = capsys.readouterr().out
        assert code == 0, out

    def test_committed_baseline_entries_are_justified(self):
        baseline = Baseline.load(
            REPO_ROOT / "tools" / "analysis_baseline.json"
        )
        for entry in baseline.entries:
            assert len(entry.justification) > 20, entry.key
            assert "TODO" not in entry.justification, entry.key
