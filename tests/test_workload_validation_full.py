"""Validation of every benchmark workload at calibration scale.

These are the tests that guard the Table 2 / Figure 3–4 calibration: if a
generator or profile change drifts a workload away from its paper targets,
they fail here with the validator's graded report rather than as a
mysteriously wrong figure downstream.
"""

import pytest

from repro.synth.profiles import BENCHMARK_NAMES
from repro.synth.validate import validate_workload
from repro.synth.workloads import load_workload

#: Long enough for the distinct-seen check to engage (>= 100k).
_CALIBRATION_TRACE = 120_000


@pytest.fixture(scope="module", params=BENCHMARK_NAMES)
def calibrated_workload(request):
    return load_workload(request.param, n_tasks=_CALIBRATION_TRACE)


class TestCalibration:
    def test_structural_and_statistical_checks(self, calibrated_workload):
        report = validate_workload(calibrated_workload)
        assert report.ok, f"\n{report}"

    def test_distinct_seen_within_band(self, calibrated_workload):
        """The working set at 120k tasks sits within a loose band of the
        paper's full-trace figure (gcc is still unfolding at this scale)."""
        seen = calibrated_workload.trace.distinct_tasks_seen()
        target = calibrated_workload.profile.paper.distinct_tasks_seen
        assert 0.3 * target <= seen <= 2.0 * target

    def test_static_tasks_within_band(self, calibrated_workload):
        static = calibrated_workload.compiled.program.static_task_count
        target = calibrated_workload.profile.paper.static_tasks
        assert 0.5 * target <= static <= 2.0 * target
