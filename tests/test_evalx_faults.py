"""Fault tolerance and observability of the parallel experiment engine.

Covers the failure path end to end: prompt cancellation of queued cells,
keep-going degradation to :class:`CellFailure` gaps, retry with backoff,
per-cell timeouts, worker-crash recovery and attribution, metrics JSONL,
the run manifest, and argparse-level ``--jobs`` validation.
"""

from __future__ import annotations

import json
import os
import time
from types import SimpleNamespace

import pytest

from repro.errors import CellExecutionError, ExperimentError
from repro.evalx.metrics import RunMetrics, write_manifest
from repro.evalx.parallel import (
    Cell,
    CellFailure,
    RetryPolicy,
    execute_cells,
    is_failure,
    run_sharded,
)
from repro.evalx.result import ExperimentResult


# -- picklable cell functions (workers import this module) -------------

def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"bad input {x}")


def _sleep(seconds: float) -> str:
    time.sleep(seconds)
    return "slept"


def _exit_worker() -> None:
    os._exit(17)  # simulates an OOM-killed / segfaulted worker


def _flaky(counter_path: str, fail_times: int, value: int) -> int:
    """Fail the first ``fail_times`` calls, then succeed (cross-process)."""
    calls = 0
    if os.path.exists(counter_path):
        calls = int(open(counter_path).read())
    with open(counter_path, "w") as handle:
        handle.write(str(calls + 1))
    if calls < fail_times:
        raise RuntimeError(f"flaky failure #{calls}")
    return value


def _cells(values) -> list[Cell]:
    return [
        Cell(label=f"c{v}", fn=_square, kwargs={"x": v}) for v in values
    ]


class TestPromptFailure:
    """Satellite: queued cells are cancelled when an earlier cell fails."""

    def test_failure_surfaces_before_queued_slow_cell_runs(self):
        # Two workers: the failing and fast cells start, the slow cell
        # is queued behind them. Its future must be cancelled, not run.
        cells = [
            Cell(label="failing", fn=_boom, kwargs={"x": 1}),
            Cell(label="fast", fn=_square, kwargs={"x": 2}),
            Cell(label="slow-queued", fn=_sleep, kwargs={"seconds": 30}),
        ]
        started = time.monotonic()
        with pytest.raises(ExperimentError, match="failing"):
            execute_cells(cells, jobs=2)
        assert time.monotonic() - started < 10


class TestKeepGoing:
    @pytest.mark.parametrize("jobs", [None, 2])
    def test_failed_cell_degrades_to_typed_gap(self, jobs):
        cells = [
            Cell(label="a", fn=_square, kwargs={"x": 2}),
            Cell(label="broken-cell", fn=_boom, kwargs={"x": 7}),
            Cell(label="b", fn=_square, kwargs={"x": 3}),
        ]
        results = execute_cells(cells, jobs=jobs, keep_going=True)
        assert results[0] == 4 and results[2] == 9
        failure = results[1]
        assert is_failure(failure)
        assert failure.label == "broken-cell"
        assert failure.kind == "error"
        assert "bad input 7" in failure.error
        assert failure.attempts == 1


class TestRetry:
    @pytest.mark.parametrize("jobs", [None, 2])
    def test_flaky_cell_succeeds_after_retries(self, tmp_path, jobs):
        counter = str(tmp_path / f"flaky-{jobs}")
        cells = [
            Cell(
                label="flaky",
                fn=_flaky,
                kwargs={
                    "counter_path": counter,
                    "fail_times": 2,
                    "value": 42,
                },
            ),
            Cell(label="steady", fn=_square, kwargs={"x": 5}),
        ]
        policy = RetryPolicy(retries=3, backoff_seconds=0.01)
        assert execute_cells(cells, jobs=jobs, retry=policy) == [42, 25]

    def test_retries_exhausted_still_names_cell(self, tmp_path):
        counter = str(tmp_path / "always")
        cells = [
            Cell(
                label="hopeless",
                fn=_flaky,
                kwargs={
                    "counter_path": counter,
                    "fail_times": 99,
                    "value": 0,
                },
            ),
            Cell(label="steady", fn=_square, kwargs={"x": 5}),
        ]
        policy = RetryPolicy(retries=2, backoff_seconds=0.01)
        with pytest.raises(CellExecutionError, match="hopeless") as info:
            execute_cells(cells, jobs=2, retry=policy)
        assert info.value.cell_label == "hopeless"
        assert int(open(counter).read()) == 3  # 1 attempt + 2 retries


class TestWorkerCrash:
    """Satellite: a dead worker surfaces as a named cell, not a bare
    ``BrokenProcessPool``; keep-going still returns partial results."""

    def _cells(self):
        return [
            Cell(label="ok-1", fn=_square, kwargs={"x": 2}),
            Cell(label="crash-cell", fn=_exit_worker),
            Cell(label="ok-2", fn=_square, kwargs={"x": 3}),
        ]

    def test_crash_raises_experiment_error_naming_cell(self):
        with pytest.raises(ExperimentError, match="crash-cell") as info:
            execute_cells(self._cells(), jobs=2)
        assert isinstance(info.value, CellExecutionError)
        assert info.value.cell_label == "crash-cell"

    def test_crash_with_keep_going_returns_partial_results(self):
        results = execute_cells(self._cells(), jobs=2, keep_going=True)
        assert results[0] == 4 and results[2] == 9
        assert is_failure(results[1])
        assert results[1].kind == "crash"
        assert results[1].label == "crash-cell"


class TestTimeout:
    def test_timed_out_cell_becomes_gap_and_rest_completes(self):
        cells = [
            Cell(label="stuck", fn=_sleep, kwargs={"seconds": 3}),
            Cell(label="quick", fn=_square, kwargs={"x": 4}),
        ]
        policy = RetryPolicy(timeout_seconds=0.4)
        started = time.monotonic()
        results = execute_cells(
            cells, jobs=2, keep_going=True, retry=policy
        )
        assert results[1] == 16
        assert is_failure(results[0])
        assert results[0].kind == "timeout"
        assert time.monotonic() - started < 3  # did not wait out the sleep


# -- run_sharded end to end: gaps in the report, metrics JSONL ---------

def _fake_cells(n_tasks=None, quick=False):
    return [
        Cell(label="good", fn=_square, kwargs={"x": 3}),
        Cell(label="raiser", fn=_boom, kwargs={"x": 9}),
        Cell(label="crasher", fn=_exit_worker),
    ]


def _fake_combine(cells, results, n_tasks=None, quick=False):
    shown = [
        "-" if is_failure(payload) else str(payload)
        for payload in results
    ]
    return ExperimentResult(
        experiment_id="faulty",
        title="injected-fault fixture",
        text=" ".join(shown),
        data={"values": shown},
    )


FAKE_MODULE = SimpleNamespace(
    __name__="tests.faulty", cells=_fake_cells, combine=_fake_combine
)


class TestRunShardedFaults:
    """The ISSUE's acceptance scenario: one raising cell plus one
    worker-killing cell under ``--jobs 2 --keep-going``."""

    def test_keep_going_reports_gaps_and_metrics(self, tmp_path):
        metrics_path = tmp_path / "metrics.jsonl"
        with RunMetrics(path=metrics_path, progress=False) as metrics:
            result = run_sharded(
                FAKE_MODULE, jobs=2, keep_going=True, metrics=metrics
            )
        assert result.text.startswith("9 - -")
        assert "FAILED CELLS (2)" in result.text
        assert [f.label for f in result.failures] == ["raiser", "crasher"]
        assert {f.kind for f in result.failures} == {"error", "crash"}
        assert result.data["_failed_cells"] == ["raiser", "crasher"]

        records = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        events = [r["event"] for r in records]
        assert events[0] == "experiment_start"
        assert events[-1] == "experiment"
        cell_records = [r for r in records if r["event"] == "cell"]
        assert {r["cell"] for r in cell_records} == {
            "good", "raiser", "crasher"
        }
        ok = next(r for r in cell_records if r["cell"] == "good")
        assert ok["status"] == "ok" and ok["worker_pid"] > 0
        assert ok["wall_seconds"] >= 0
        summary = records[-1]
        assert summary["cells"] == 3 and summary["failed"] == 2

    def test_without_keep_going_fails_naming_a_cell(self):
        with pytest.raises(ExperimentError) as info:
            run_sharded(FAKE_MODULE, jobs=2)
        assert isinstance(info.value, CellExecutionError)
        assert info.value.cell_label in ("raiser", "crasher")

    def test_fault_free_run_has_no_failure_section(self):
        module = SimpleNamespace(
            __name__="tests.clean",
            cells=lambda n_tasks=None, quick=False: _cells([1, 2, 3]),
            combine=_fake_combine,
        )
        serial = run_sharded(module)
        pooled = run_sharded(module, jobs=2)
        assert serial.text == pooled.text == "1 4 9"
        assert serial.failures == pooled.failures == ()
        assert "_failed_cells" not in serial.data


class TestManifest:
    def test_manifest_captures_config_and_seeds(self, tmp_path):
        path = write_manifest(
            tmp_path / "run.manifest.json",
            experiments=["table2", "figure7"],
            config={"jobs": 2, "quick": True},
        )
        manifest = json.loads(path.read_text())
        assert manifest["experiments"] == ["table2", "figure7"]
        assert manifest["config"]["jobs"] == 2
        assert set(manifest["seeds"]) == {
            "gcc", "compress", "espresso", "sc", "xlisp"
        }
        assert "git_sha" in manifest and "python" in manifest


class TestJobsArgumentValidation:
    """Satellite: bad ``--jobs`` is rejected by argparse, not deep in
    ``resolve_jobs`` after cells are built."""

    def _run(self, argv, capsys):
        from repro.evalx.__main__ import main

        with pytest.raises(SystemExit) as info:
            main(argv)
        return info.value.code, capsys.readouterr().err

    def test_negative_jobs_rejected_with_clear_message(self, capsys):
        code, err = self._run(["table2", "--jobs", "-2"], capsys)
        assert code == 2
        assert "--jobs must be >= 0" in err

    def test_absurd_jobs_rejected(self, capsys):
        code, err = self._run(["table2", "--jobs", "99999"], capsys)
        assert code == 2
        assert "sanity cap" in err

    def test_non_integer_jobs_rejected(self, capsys):
        code, err = self._run(["table2", "--jobs", "many"], capsys)
        assert code == 2
        assert "integer" in err


class TestRobustnessFlagValidation:
    """Satellite: every fault-handling knob is validated by argparse —
    the error arrives before any trace is generated."""

    def _run(self, argv, capsys):
        from repro.evalx.__main__ import main

        with pytest.raises(SystemExit) as info:
            main(argv)
        return info.value.code, capsys.readouterr().err

    def test_negative_retries_rejected(self, capsys):
        code, err = self._run(["table2", "--retries", "-1"], capsys)
        assert code == 2
        assert ">= 0" in err

    def test_non_integer_retries_rejected(self, capsys):
        code, err = self._run(["table2", "--retries", "two"], capsys)
        assert code == 2
        assert "integer" in err

    def test_nonpositive_backoff_rejected(self, capsys):
        code, err = self._run(
            ["table2", "--retry-backoff", "0"], capsys
        )
        assert code == 2
        assert "positive" in err

    def test_nonpositive_timeout_rejected(self, capsys):
        code, err = self._run(
            ["table2", "--cell-timeout", "-3"], capsys
        )
        assert code == 2
        assert "positive" in err

    def test_resume_without_checkpoint_dir_rejected(self, capsys):
        code, err = self._run(["table2", "--resume"], capsys)
        assert code == 2
        assert "--resume requires --checkpoint-dir" in err

    def test_bad_fault_spec_rejected(self, capsys):
        code, err = self._run(
            ["table2", "--inject-faults", "explode@gcc"], capsys
        )
        assert code == 2
        assert "unknown fault action" in err

    def test_hang_without_duration_rejected(self, capsys):
        code, err = self._run(
            ["table2", "--inject-faults", "hang@gcc"], capsys
        )
        assert code == 2
        assert "hang needs an explicit duration" in err

    def test_negative_fault_seed_rejected(self, capsys):
        code, err = self._run(
            ["table2", "--inject-faults", "raise", "--fault-seed", "-5"],
            capsys,
        )
        assert code == 2
        assert ">= 0" in err


def _cells_combine_ids():
    """Every registered driver that speaks the cells/combine protocol."""
    import importlib

    from repro.evalx.registry import ALL_IDS

    ids = []
    for experiment_id in ALL_IDS:
        module = importlib.import_module(
            f"repro.evalx.experiments.{experiment_id}"
        )
        if hasattr(module, "cells"):
            ids.append(experiment_id)
    return ids


class TestCombineToleratesFailures:
    """Every cells/combine driver must render gaps, not crash."""

    @pytest.mark.parametrize("experiment_id", _cells_combine_ids())
    def test_all_failed_grid_still_combines(self, experiment_id):
        import importlib

        module = importlib.import_module(
            f"repro.evalx.experiments.{experiment_id}"
        )
        cells = module.cells(n_tasks=2000, quick=True)
        failures = [
            CellFailure(
                label=cell.label,
                kind="error",
                error="injected",
                attempts=1,
                wall_seconds=0.0,
            )
            for cell in cells
        ]
        result = module.combine(cells, failures, n_tasks=2000, quick=True)
        assert result.experiment_id == experiment_id
        assert result.text  # renders something, with gaps

    def test_extension_drivers_all_speak_cells_combine(self):
        from repro.evalx.registry import EXTENSION_IDS

        assert set(EXTENSION_IDS) <= set(_cells_combine_ids())
