"""Tests for charts, validation, display, and loop analysis."""

import pytest

from repro.cfg.loops import loop_nesting_depths, natural_loops
from repro.errors import ExperimentError
from repro.evalx.charts import charts_for_result, render_chart
from repro.evalx.result import ExperimentResult
from repro.isa.display import (
    format_exit,
    format_program_summary,
    format_task,
    format_task_neighbourhood,
)
from repro.synth.validate import validate_workload

from tests.helpers import block
from repro.cfg.basicblock import TerminatorKind
from repro.cfg.graph import ControlFlowGraph
from repro.synth.behavior import FixedChoice


class TestRenderChart:
    def test_basic_chart_structure(self):
        chart = render_chart(
            [0, 1, 2, 3],
            {"a": [0.1, 0.08, 0.06, 0.05], "b": [0.12, 0.11, 0.1, 0.09]},
            height=6,
            width=20,
        )
        lines = chart.splitlines()
        assert len(lines) == 6 + 3  # grid + axis + labels + legend
        assert "*=a" in lines[-1]
        assert "o=b" in lines[-1]

    def test_extremes_labelled(self):
        chart = render_chart([0, 1], {"s": [0.5, 0.25]}, height=4, width=12)
        assert "50.00%" in chart
        assert "25.00%" in chart

    def test_flat_series_does_not_crash(self):
        render_chart([0, 1, 2], {"s": [0.1, 0.1, 0.1]})

    def test_validation(self):
        with pytest.raises(ExperimentError):
            render_chart([0, 1], {})
        with pytest.raises(ExperimentError):
            render_chart([0], {"s": [0.1]})
        with pytest.raises(ExperimentError):
            render_chart([0, 1], {"s": [0.1]})  # length mismatch
        with pytest.raises(ExperimentError):
            render_chart([0, 1], {"s": [0.1, 0.2]}, height=1)

    def test_charts_for_result_series_layout(self):
        result = ExperimentResult(
            experiment_id="x", title="t", text="",
            data={"depths": [0, 1], "series": {"a": [0.2, 0.1]}},
        )
        charts = charts_for_result(result)
        assert len(charts) == 1
        assert "[x]" in charts[0]

    def test_charts_for_result_per_benchmark_layout(self):
        result = ExperimentResult(
            experiment_id="fig", title="t", text="",
            data={
                "configs": ["a", "b"],
                "gcc": {"ideal": [0.2, 0.1], "real": [0.25, 0.12]},
                "xlisp": {"ideal": [0.3, 0.2], "real": [0.3, 0.25]},
            },
        )
        charts = charts_for_result(result)
        assert len(charts) == 2

    def test_charts_for_tabular_result_empty(self):
        result = ExperimentResult(
            experiment_id="table", title="t", text="", data={"gcc": {}}
        )
        assert charts_for_result(result) == []


class TestValidateWorkload:
    def test_benchmark_workloads_pass(self, compress_workload):
        report = validate_workload(compress_workload)
        assert report.ok, str(report)

    def test_report_rendering(self, compress_workload):
        report = validate_workload(compress_workload)
        text = str(report)
        assert "validation: compress" in text
        assert "trace chains" in text

    def test_all_small_fixtures_valid(
        self, gcc_workload, sc_workload, xlisp_workload
    ):
        for workload in (gcc_workload, sc_workload, xlisp_workload):
            report = validate_workload(workload)
            assert report.ok, str(report)

    def test_failures_listed(self, compress_workload):
        # With an absurdly tight tolerance the count checks must fail...
        # tolerance applies only to >=100k traces; structural checks still
        # pass, so craft the check directly:
        report = validate_workload(compress_workload, tolerance=0.6)
        assert report.failures() == [
            c for c in report.checks if not c.ok
        ]


class TestDisplay:
    def test_format_task_includes_exits(self, compress_workload):
        program = compress_workload.compiled.program
        task = next(iter(program.tfg))
        text = format_task(task)
        assert f"{task.address:#x}" in text
        assert "exit 0:" in text

    def test_format_exit_mnemonics(self, compress_workload):
        program = compress_workload.compiled.program
        for task in program.tfg:
            for task_exit in task.header.exits:
                text = format_exit(task_exit)
                assert "->" in text

    def test_program_summary(self, compress_workload):
        program = compress_workload.compiled.program
        text = format_program_summary(program)
        assert "tasks" in text
        assert "header bits" in text

    def test_neighbourhood_lists_successors(self, compress_workload):
        program = compress_workload.compiled.program
        text = format_task_neighbourhood(program, program.entry)
        assert "task" in text


class TestNaturalLoops:
    def _loop_cfg(self):
        cfg = ControlFlowGraph("f", entry_label="f.h")
        cfg.add_block(
            block(
                "f.h",
                TerminatorKind.COND_BRANCH,
                ("f.body", "f.ret"),
                behavior=FixedChoice(1),
            )
        )
        cfg.add_block(block("f.body", TerminatorKind.JUMP, ("f.h",)))
        cfg.add_block(block("f.ret", TerminatorKind.RETURN))
        return cfg

    def test_single_loop_found(self):
        loops = natural_loops(self._loop_cfg())
        assert len(loops) == 1
        assert loops[0].header == "f.h"
        assert loops[0].body == {"f.h", "f.body"}
        assert loops[0].size == 2
        assert "f.body" in loops[0]

    def test_acyclic_has_no_loops(self):
        from tests.helpers import diamond_program

        cfg = diamond_program().function("main")
        assert natural_loops(cfg) == []

    def test_nesting_depths(self):
        depths = loop_nesting_depths(self._loop_cfg())
        assert depths["f.h"] == 1
        assert depths["f.body"] == 1
        assert depths["f.ret"] == 0

    def test_generated_functions_have_loops(self, compress_workload):
        """compress is loop-heavy by design; at least one hot function
        must contain a natural loop."""
        from repro.synth.generator import SyntheticProgramGenerator

        program = SyntheticProgramGenerator(
            compress_workload.profile
        ).generate()
        total = sum(
            len(natural_loops(cfg)) for cfg in program.functions()
        )
        assert total > 0
