"""Tests for the D-O-L-C (F) index construction (§6.1-6.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PredictorConfigError
from repro.predictors.folding import DolcSpec


class TestParse:
    def test_paper_example(self):
        # §6.2's worked example: 6-5-8-9 (3).
        spec = DolcSpec.parse("6-5-8-9(3)")
        assert (spec.depth, spec.older_bits, spec.last_bits,
                spec.current_bits, spec.folds) == (6, 5, 8, 9, 3)
        assert spec.intermediate_bits == 42
        assert spec.index_bits == 14
        assert spec.table_entries == 16 * 1024

    def test_whitespace_tolerated(self):
        assert DolcSpec.parse(" 2-4-5-5 ( 1 ) ").depth == 2

    def test_round_trip_str(self):
        for text in ("0-0-0-14(1)", "3-6-8-8(2)", "7-4-9-9(3)"):
            assert str(DolcSpec.parse(text)) == text

    def test_garbage_rejected(self):
        for text in ("", "6-5-8-9", "a-b-c-d(1)", "6/5/8/9(3)"):
            with pytest.raises(PredictorConfigError):
                DolcSpec.parse(text)


class TestValidation:
    def test_indivisible_fold_rejected(self):
        with pytest.raises(PredictorConfigError):
            DolcSpec(depth=2, older_bits=4, last_bits=5, current_bits=5,
                     folds=3)  # 14 bits not divisible by 3

    def test_depth0_with_history_bits_rejected(self):
        with pytest.raises(PredictorConfigError):
            DolcSpec(depth=0, older_bits=2, last_bits=0, current_bits=10)

    def test_empty_index_rejected(self):
        with pytest.raises(PredictorConfigError):
            DolcSpec(depth=0, older_bits=0, last_bits=0, current_bits=0)

    def test_older_without_last_rejected(self):
        with pytest.raises(PredictorConfigError):
            DolcSpec(depth=3, older_bits=4, last_bits=0, current_bits=8)


class TestIndexing:
    def test_depth0_uses_current_address_only(self):
        spec = DolcSpec.parse("0-0-0-14(1)")
        assert spec.index(0x1000, []) == spec.index(0x1000, [0x2000, 0x3000])

    def test_alignment_bits_stripped(self):
        # Addresses 0x1000 and 0x1001 differ only below word alignment...
        # task addresses are always word-aligned; check the shift is applied:
        spec = DolcSpec.parse("0-0-0-4(1)")
        assert spec.index(0b1011_00, []) == 0b1011

    def test_path_affects_index(self):
        spec = DolcSpec.parse("2-4-5-5(1)")
        a = spec.index(0x1000, [0x2000, 0x3000])
        b = spec.index(0x1000, [0x2000, 0x3004])
        assert a != b

    def test_only_last_depth_entries_used(self):
        spec = DolcSpec.parse("2-4-5-5(1)")
        short = spec.index(0x1000, [0x2000, 0x3000])
        long = spec.index(0x1000, [0x9999_0, 0x2000, 0x3000])
        assert short == long

    def test_cold_start_shorter_path_ok(self):
        spec = DolcSpec.parse("4-5-6-7(2)")
        assert spec.index(0x1000, []) < spec.table_entries
        assert spec.index(0x1000, [0x2000]) < spec.table_entries

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 4),
        st.lists(
            st.integers(min_value=0, max_value=(1 << 32) - 4),
            max_size=10,
        ),
    )
    def test_index_in_table_range(self, addr, path):
        spec = DolcSpec.parse("6-5-8-9(3)")
        assert 0 <= spec.index(addr, path) < spec.table_entries

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=7,
                    max_size=7))
    def test_index_deterministic(self, path_words):
        spec = DolcSpec.parse("7-4-9-9(3)")
        path = [4 * w for w in path_words]
        assert spec.index(0x400, path) == spec.index(0x400, path)

    def test_figure10_configs_all_14_bit(self):
        from repro.evalx.experiments.common import EXIT_DOLC_CONFIGS

        for text in EXIT_DOLC_CONFIGS:
            spec = DolcSpec.parse(text)
            assert spec.index_bits == 14

    def test_figure12_configs_all_11_bit(self):
        from repro.evalx.experiments.common import CTTB_DOLC_CONFIGS

        for text in CTTB_DOLC_CONFIGS:
            spec = DolcSpec.parse(text)
            assert spec.index_bits == 11

    def test_depths_cover_zero_to_seven(self):
        from repro.evalx.experiments.common import (
            CTTB_DOLC_CONFIGS,
            EXIT_DOLC_CONFIGS,
        )

        for configs in (EXIT_DOLC_CONFIGS, CTTB_DOLC_CONFIGS):
            depths = [DolcSpec.parse(t).depth for t in configs]
            assert depths == list(range(8))
