"""Tests for the CFG substrate: blocks, graphs, analyses."""

import pytest

from repro.cfg.analysis import back_edges, reachable_blocks
from repro.cfg.basicblock import (
    BasicBlock,
    TASK_ENDING_KINDS,
    Terminator,
    TerminatorKind,
)
from repro.cfg.graph import ControlFlowGraph, ProgramCFG
from repro.errors import CFGError
from repro.synth.behavior import FixedChoice

from tests.helpers import block, call_program, diamond_program


class TestTerminatorValidation:
    def test_jump_needs_one_successor(self):
        with pytest.raises(CFGError):
            Terminator(kind=TerminatorKind.JUMP, successors=())
        with pytest.raises(CFGError):
            Terminator(kind=TerminatorKind.JUMP, successors=("a", "b"))

    def test_cond_branch_needs_two_successors_and_behavior(self):
        with pytest.raises(CFGError):
            Terminator(
                kind=TerminatorKind.COND_BRANCH,
                successors=("a",),
                behavior=FixedChoice(0),
            )
        with pytest.raises(CFGError):
            Terminator(
                kind=TerminatorKind.COND_BRANCH, successors=("a", "b")
            )

    def test_call_needs_callee_and_return_point(self):
        with pytest.raises(CFGError):
            Terminator(kind=TerminatorKind.CALL, successors=("ret",))
        with pytest.raises(CFGError):
            Terminator(kind=TerminatorKind.CALL, callee="f", successors=())

    def test_return_has_no_successors(self):
        with pytest.raises(CFGError):
            Terminator(kind=TerminatorKind.RETURN, successors=("a",))

    def test_indirect_jump_needs_behavior(self):
        with pytest.raises(CFGError):
            Terminator(
                kind=TerminatorKind.INDIRECT_JUMP, successors=("a", "b")
            )

    def test_indirect_call_needs_callees_behavior_return(self):
        with pytest.raises(CFGError):
            Terminator(
                kind=TerminatorKind.INDIRECT_CALL,
                successors=("ret",),
                behavior=FixedChoice(0),
            )

    def test_task_ending_kinds(self):
        assert TerminatorKind.CALL in TASK_ENDING_KINDS
        assert TerminatorKind.RETURN in TASK_ENDING_KINDS
        assert TerminatorKind.COND_BRANCH not in TASK_ENDING_KINDS
        assert TerminatorKind.JUMP not in TASK_ENDING_KINDS


class TestBasicBlock:
    def test_requires_instructions(self):
        with pytest.raises(CFGError):
            BasicBlock(
                label="x",
                terminator=Terminator(kind=TerminatorKind.RETURN),
                instruction_count=0,
            )

    def test_ends_task_property(self):
        assert block("a", TerminatorKind.RETURN).ends_task
        assert not block("b", TerminatorKind.JUMP, ("a",)).ends_task


class TestControlFlowGraph:
    def test_duplicate_label_rejected(self):
        cfg = ControlFlowGraph("f", entry_label="f.a")
        cfg.add_block(block("f.a", TerminatorKind.RETURN))
        with pytest.raises(CFGError):
            cfg.add_block(block("f.a", TerminatorKind.RETURN))

    def test_predecessor_counts(self):
        program = diamond_program()
        cfg = program.function("main")
        counts = cfg.predecessor_counts()
        assert counts["main.join"] == 2
        assert counts["main.cond"] == 1
        assert counts["main.entry"] == 0

    def test_validate_requires_return(self):
        cfg = ControlFlowGraph("f", entry_label="f.a")
        cfg.add_block(block("f.a", TerminatorKind.JUMP, ("f.a",)))
        with pytest.raises(CFGError):
            cfg.validate()

    def test_validate_catches_dangling_arc(self):
        cfg = ControlFlowGraph("f", entry_label="f.a")
        cfg.add_block(block("f.a", TerminatorKind.JUMP, ("f.missing",)))
        with pytest.raises(CFGError):
            cfg.validate()

    def test_unknown_block_lookup(self):
        cfg = ControlFlowGraph("f", entry_label="f.a")
        with pytest.raises(CFGError):
            cfg.block("nope")


class TestProgramCFG:
    def test_validate_catches_unknown_callee(self):
        program = ProgramCFG(main="main")
        cfg = ControlFlowGraph("main", entry_label="main.entry")
        cfg.add_block(
            block(
                "main.entry",
                TerminatorKind.CALL,
                ("main.ret",),
                callee="ghost",
            )
        )
        cfg.add_block(block("main.ret", TerminatorKind.RETURN))
        program.add_function(cfg)
        with pytest.raises(CFGError):
            program.validate()

    def test_validate_requires_main(self):
        program = ProgramCFG(main="main")
        with pytest.raises(CFGError):
            program.validate()

    def test_call_program_validates(self):
        call_program().validate()

    def test_duplicate_function_rejected(self):
        program = call_program()
        with pytest.raises(CFGError):
            program.add_function(ControlFlowGraph("f", entry_label="x"))


class TestAnalyses:
    def test_reachable_blocks_full_diamond(self):
        cfg = diamond_program().function("main")
        assert reachable_blocks(cfg) == set(cfg.labels())

    def test_unreachable_block_excluded(self):
        cfg = ControlFlowGraph("f", entry_label="f.a")
        cfg.add_block(block("f.a", TerminatorKind.RETURN))
        cfg.add_block(block("f.dead", TerminatorKind.JUMP, ("f.a",)))
        assert reachable_blocks(cfg) == {"f.a"}

    def test_back_edge_detection(self):
        cfg = ControlFlowGraph("f", entry_label="f.h")
        cfg.add_block(
            block(
                "f.h",
                TerminatorKind.COND_BRANCH,
                ("f.body", "f.ret"),
                behavior=FixedChoice(0),
            )
        )
        cfg.add_block(block("f.body", TerminatorKind.JUMP, ("f.h",)))
        cfg.add_block(block("f.ret", TerminatorKind.RETURN))
        assert back_edges(cfg) == {("f.body", "f.h")}

    def test_acyclic_graph_has_no_back_edges(self):
        cfg = diamond_program().function("main")
        assert back_edges(cfg) == set()
