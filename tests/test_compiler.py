"""Tests for the task partitioner and compile pipeline."""

import pytest

from repro.cfg.basicblock import TerminatorKind
from repro.cfg.graph import ControlFlowGraph, ProgramCFG
from repro.compiler import PartitionConfig, compile_program
from repro.compiler.partitioner import TaskPartitioner
from repro.errors import PartitionError
from repro.isa.controlflow import ControlFlowType, MAX_EXITS_PER_TASK
from repro.synth.behavior import BiasedChoice, FixedChoice
from repro.synth.generator import SyntheticProgramGenerator
from repro.synth.profiles import get_profile

from tests.helpers import (
    block,
    call_program,
    compile_small,
    diamond_program,
    straightline_program,
    switch_program,
)


class TestPartitionConfig:
    def test_rejects_zero_blocks(self):
        with pytest.raises(PartitionError):
            PartitionConfig(max_blocks_per_task=0)

    def test_rejects_exit_limit_beyond_isa(self):
        with pytest.raises(PartitionError):
            PartitionConfig(max_exits_per_task=5)


class TestPartitioner:
    def test_straightline_is_one_task(self):
        program = straightline_program()
        regions = TaskPartitioner(
            program.function("main"), PartitionConfig()
        ).partition()
        # entry..b merge into one region; the return block is its own task
        # because RETURN terminators end tasks... the return block has one
        # predecessor and is absorbed unless it is a leader.
        labels = {r.leader for r in regions}
        assert "main.entry" in labels

    def test_diamond_join_becomes_leader(self):
        program = diamond_program()
        regions = TaskPartitioner(
            program.function("main"), PartitionConfig()
        ).partition()
        leaders = {r.leader for r in regions}
        assert "main.join" in leaders  # two predecessors force a task start

    def test_exit_limit_respected_everywhere(self):
        for name in ("gcc", "compress", "xlisp"):
            profile = get_profile(name)
            program = SyntheticProgramGenerator(profile).generate()
            config = PartitionConfig(
                max_blocks_per_task=profile.max_blocks_per_task
            )
            for cfg in program.functions():
                for region in TaskPartitioner(cfg, config).partition():
                    assert (
                        len(region.exit_descriptors) <= MAX_EXITS_PER_TASK
                    )
                    assert (
                        len(region.blocks)
                        <= profile.max_blocks_per_task
                    )

    def test_regions_partition_reachable_blocks(self):
        program = diamond_program()
        cfg = program.function("main")
        regions = TaskPartitioner(cfg, PartitionConfig()).partition()
        seen: set[str] = set()
        for region in regions:
            for label in region.blocks:
                assert label not in seen
                seen.add(label)
        assert seen == set(cfg.labels())

    def test_tiny_block_cap_still_legal(self):
        program = diamond_program(BiasedChoice(0.5))
        regions = TaskPartitioner(
            program.function("main"),
            PartitionConfig(max_blocks_per_task=1),
        ).partition()
        for region in regions:
            assert len(region.blocks) == 1
            assert len(region.exit_descriptors) <= 2


class TestCompilePipeline:
    def test_straightline_compiles_and_validates(self):
        compiled = compile_small(straightline_program())
        compiled.program.tfg.validate()
        assert compiled.program.static_task_count >= 1

    def test_call_headers_reference_callee_entry(self):
        compiled = compile_small(call_program())
        call_exits = [
            e
            for task in compiled.program.tfg
            for e in task.header.exits
            if e.cf_type is ControlFlowType.CALL
        ]
        assert len(call_exits) == 2
        f_entry_task = compiled.entry_block("f").task_address
        assert {e.target for e in call_exits} == {f_entry_task}
        for e in call_exits:
            # Return addresses point at real task starts.
            assert e.return_address in compiled.program.tfg

    def test_block_task_membership_consistent(self):
        compiled = compile_small(call_program())
        for label, cblock in compiled.blocks.items():
            assert cblock.label == label
            assert cblock.task_address in compiled.program.tfg

    def test_task_leaders_map_back(self):
        compiled = compile_small(diamond_program())
        for task_addr, leader in compiled.task_leader.items():
            assert compiled.blocks[leader].task_address == task_addr
            assert compiled.blocks[leader].address == task_addr

    def test_switch_produces_indirect_exit(self):
        compiled = compile_small(switch_program(FixedChoice(1)))
        kinds = {
            e.cf_type
            for task in compiled.program.tfg
            for e in task.header.exits
        }
        assert ControlFlowType.INDIRECT_BRANCH in kinds

    def test_duplicate_labels_across_functions_rejected(self):
        program = ProgramCFG(main="main")
        main = ControlFlowGraph("main", entry_label="same.label")
        main.add_block(block("same.label", TerminatorKind.RETURN))
        other = ControlFlowGraph("other", entry_label="same.label")
        program.add_function(main)
        # Same label in a second function must be rejected at compile time.
        other2 = ControlFlowGraph("other", entry_label="same.label")
        other2.add_block(block("same.label", TerminatorKind.RETURN))
        with pytest.raises(Exception):
            program.add_function(other2)
            compile_program(program)

    def test_exit_indices_dense_and_in_range(self):
        compiled = compile_small(call_program())
        for cblock in compiled.blocks.values():
            task = compiled.program.task(cblock.task_address)
            if cblock.terminator_exit_index is not None:
                assert 0 <= cblock.terminator_exit_index < task.n_exits
            for index in cblock.successor_exit_index:
                if index is not None:
                    assert 0 <= index < task.n_exits

    def test_addresses_word_aligned(self):
        compiled = compile_small(call_program())
        for cblock in compiled.blocks.values():
            assert cblock.address % 4 == 0


class TestCompileWholeProfiles:
    """Compile every benchmark profile program; check global invariants."""

    @pytest.mark.parametrize("name", ["compress", "xlisp"])
    def test_profile_compiles_with_legal_headers(self, name):
        profile = get_profile(name)
        program_cfg = SyntheticProgramGenerator(profile).generate()
        compiled = compile_program(
            program_cfg,
            name=name,
            config=PartitionConfig(
                max_blocks_per_task=profile.max_blocks_per_task
            ),
        )
        compiled.program.tfg.validate()
        for task in compiled.program.tfg:
            assert 1 <= task.n_exits <= MAX_EXITS_PER_TASK
            assert task.instruction_count >= 1
