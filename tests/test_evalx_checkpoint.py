"""Checkpoint store: fingerprints, verification, and resume semantics.

Covers the tentpole guarantees in isolation: canonical kwargs encoding
(including dataclass and tuple-vs-list unification), content-addressed
fingerprints that miss on any input change, atomic save/load
round-trips, checksum detection of corrupted records, stale-format
rejection, and `run_sharded` populate-then-resume producing identical
results with zero re-executions.
"""

from __future__ import annotations

import dataclasses
import json
from types import SimpleNamespace

import pytest

from repro.evalx.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointCorrupt,
    CheckpointHit,
    CheckpointKeyError,
    CheckpointStore,
    canonical_kwargs,
    canonical_value,
    cell_fingerprint,
    code_version,
)
from repro.evalx.metrics import RunMetrics
from repro.evalx.parallel import Cell, run_sharded
from repro.evalx.result import ExperimentResult


def _double(x):
    return x * 2


@dataclasses.dataclass(frozen=True)
class _Config:
    depth: int
    name: str


class TestCanonicalization:
    def test_primitives_pass_through(self):
        assert canonical_value(None) is None
        assert canonical_value(True) is True
        assert canonical_value(3) == 3
        assert canonical_value(2.5) == 2.5
        assert canonical_value("gcc") == "gcc"

    def test_tuple_and_list_unify(self):
        assert canonical_kwargs({"v": (1, 2)}) == canonical_kwargs(
            {"v": [1, 2]}
        )

    def test_dict_key_order_is_irrelevant(self):
        assert canonical_kwargs({"a": 1, "b": 2}) == canonical_kwargs(
            {"b": 2, "a": 1}
        )

    def test_dataclass_canonicalizes_by_value_and_type(self):
        one = canonical_value(_Config(depth=4, name="ras"))
        two = canonical_value(_Config(depth=4, name="ras"))
        other = canonical_value(_Config(depth=8, name="ras"))
        assert one == two
        assert one != other
        assert "_Config" in one[0]  # type is part of the identity

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(CheckpointKeyError, match="str-keyed"):
            canonical_value({1: "a"})

    def test_unknown_type_rejected(self):
        with pytest.raises(CheckpointKeyError, match="canonically"):
            canonical_value(object())

    def test_set_rejected(self):
        with pytest.raises(CheckpointKeyError):
            canonical_value({"a", "b"})


class TestFingerprint:
    def _cell(self, **kwargs):
        return Cell(label="c", fn=_double, kwargs=kwargs)

    def test_fingerprint_is_stable(self):
        cell = self._cell(x=3)
        assert cell_fingerprint("table2", cell) == cell_fingerprint(
            "table2", cell
        )

    def test_fingerprint_covers_every_input(self):
        base = cell_fingerprint("table2", self._cell(x=3))
        assert cell_fingerprint("figure6", self._cell(x=3)) != base
        assert cell_fingerprint("table2", self._cell(x=4)) != base
        other_fn = Cell(label="c", fn=_quadruple, kwargs={"x": 3})
        assert cell_fingerprint("table2", other_fn) != base

    def test_fingerprint_covers_workload_seed(self):
        plain = Cell(label="c", fn=_double, kwargs={"x": 1})
        loaded = Cell(
            label="c", fn=_double, kwargs={"x": 1},
            workload=("gcc", 1000),
        )
        assert cell_fingerprint("t", plain) != cell_fingerprint(
            "t", loaded
        )

    def test_code_version_in_key(self):
        assert str(CHECKPOINT_FORMAT_VERSION) in code_version()

    def test_unfingerprintable_kwargs_raise(self):
        with pytest.raises(CheckpointKeyError):
            cell_fingerprint("t", self._cell(x={1: 2}))


def _quadruple(x):
    return x * 4


def _stringify(x):
    return str(x)


class TestStoreRoundTrip:
    def test_save_then_load_round_trips_payload(self, tmp_path):
        store = CheckpointStore(tmp_path, resume=True)
        payload = {"rows": [1, 2.5, "three"], "nested": {"a": (1, 2)}}
        assert store.save("f" * 40, "cell", "table2", payload)
        hit = store.load("f" * 40)
        assert isinstance(hit, CheckpointHit)
        assert hit.payload == payload
        assert hit.payload["nested"]["a"] == (1, 2)  # pickle, not JSON

    def test_missing_record_is_a_plain_miss(self, tmp_path):
        assert CheckpointStore(tmp_path).load("0" * 40) is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a" * 40, "c", "t", 123)
        names = [p.name for p in tmp_path.iterdir()]
        assert names == ["a" * 40 + ".ckpt.json"]

    def test_unpicklable_payload_fails_soft(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.save("b" * 40, "c", "t", lambda: None) is False
        assert list(tmp_path.iterdir()) == []


class TestCorruptionDetection:
    def _populated(self, tmp_path):
        store = CheckpointStore(tmp_path, resume=True)
        store.save("c" * 40, "cell", "t", {"value": 7})
        return store, store.path_for("c" * 40)

    def test_flipped_payload_bytes_detected(self, tmp_path):
        store, path = self._populated(tmp_path)
        record = json.loads(path.read_text())
        blob = record["payload"]
        record["payload"] = blob[:-4] + ("AAAA" if blob[-4:] != "AAAA"
                                         else "BBBB")
        path.write_text(json.dumps(record))
        result = store.load("c" * 40)
        assert isinstance(result, CheckpointCorrupt)
        assert "checksum" in result.reason or "payload" in result.reason
        assert not path.exists()  # bad record discarded

    def test_binary_garbage_detected(self, tmp_path):
        store, path = self._populated(tmp_path)
        path.write_bytes(b"\xff\xfe not json \x00" * 20)
        result = store.load("c" * 40)
        assert isinstance(result, CheckpointCorrupt)

    def test_truncated_record_detected(self, tmp_path):
        store, path = self._populated(tmp_path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert isinstance(store.load("c" * 40), CheckpointCorrupt)

    def test_stale_format_version_detected(self, tmp_path):
        store, path = self._populated(tmp_path)
        record = json.loads(path.read_text())
        record["version"] = CHECKPOINT_FORMAT_VERSION + 1
        path.write_text(json.dumps(record))
        result = store.load("c" * 40)
        assert isinstance(result, CheckpointCorrupt)
        assert "stale" in result.reason

    def test_renamed_record_detected(self, tmp_path):
        # A record copied under another fingerprint's name must not be
        # served for that fingerprint.
        store, path = self._populated(tmp_path)
        other = store.path_for("d" * 40)
        other.write_text(path.read_text())
        result = store.load("d" * 40)
        assert isinstance(result, CheckpointCorrupt)
        assert "fingerprint" in result.reason


# -- run_sharded integration ------------------------------------------

def _fixture_module(calls_path):
    def cells(n_tasks=None, quick=False):
        return [
            Cell(
                label=f"c{v}",
                fn=_counted_double,
                kwargs={"x": v, "calls_path": str(calls_path)},
            )
            for v in (1, 2, 3)
        ]

    def combine(cells, results, n_tasks=None, quick=False):
        return ExperimentResult(
            experiment_id="ckpt-fixture",
            title="checkpoint fixture",
            text=" ".join(str(r) for r in results),
            data={"values": list(results)},
        )

    return SimpleNamespace(
        __name__="tests.ckpt_fixture", cells=cells, combine=combine
    )


def _counted_double(x, calls_path):
    with open(calls_path, "a") as handle:
        handle.write(f"{x}\n")
    return x * 2


class TestRunShardedResume:
    def test_populate_then_resume_is_identical_with_zero_reruns(
        self, tmp_path
    ):
        calls = tmp_path / "calls.txt"
        module = _fixture_module(calls)
        store_dir = tmp_path / "ckpt"

        first = run_sharded(
            module, checkpoint=CheckpointStore(store_dir)
        )
        assert calls.read_text().splitlines() == ["1", "2", "3"]
        assert len(list(store_dir.glob("*.ckpt.json"))) == 3

        second = run_sharded(
            module, checkpoint=CheckpointStore(store_dir, resume=True)
        )
        assert second.text == first.text
        assert second.data == first.data
        # No cell ran again: the calls file is unchanged.
        assert calls.read_text().splitlines() == ["1", "2", "3"]

    def test_without_resume_records_are_ignored_and_refreshed(
        self, tmp_path
    ):
        calls = tmp_path / "calls.txt"
        module = _fixture_module(calls)
        store_dir = tmp_path / "ckpt"
        run_sharded(module, checkpoint=CheckpointStore(store_dir))
        run_sharded(module, checkpoint=CheckpointStore(store_dir))
        # Fresh-run semantics: every cell executed twice.
        assert calls.read_text().splitlines() == ["1", "2", "3"] * 2

    def test_corrupt_record_reexecutes_only_that_cell(self, tmp_path):
        calls = tmp_path / "calls.txt"
        module = _fixture_module(calls)
        store_dir = tmp_path / "ckpt"
        metrics_path = tmp_path / "metrics.jsonl"

        first = run_sharded(
            module, checkpoint=CheckpointStore(store_dir)
        )
        victim = sorted(store_dir.glob("*.ckpt.json"))[0]
        victim.write_bytes(b"\x00garbage\xff" * 30)

        calls.write_text("")
        with RunMetrics(path=metrics_path, progress=False) as metrics:
            second = run_sharded(
                module,
                checkpoint=CheckpointStore(store_dir, resume=True),
                metrics=metrics,
            )
        assert second.text == first.text
        assert len(calls.read_text().splitlines()) == 1  # one re-run

        records = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        actions = [
            r["action"] for r in records if r["event"] == "checkpoint"
        ]
        assert actions.count("corrupt") == 1
        assert actions.count("resume") == 2
        assert actions.count("saved") == 1  # the re-run was re-persisted
        summary = records[-1]
        assert summary["event"] == "experiment"
        assert summary["resumed"] == 2 and summary["failed"] == 0

    def test_unfingerprintable_cell_runs_but_is_not_checkpointed(
        self, tmp_path
    ):
        def cells(n_tasks=None, quick=False):
            return [
                Cell(label="plain", fn=_double, kwargs={"x": 2}),
                Cell(label="odd", fn=_stringify, kwargs={"x": {1: 2}}),
            ]

        def combine(cells, results, n_tasks=None, quick=False):
            return ExperimentResult(
                experiment_id="odd-fixture",
                title="t",
                text=str(results),
                data={},
            )

        module = SimpleNamespace(
            __name__="tests.odd", cells=cells, combine=combine
        )
        store_dir = tmp_path / "ckpt"
        metrics_path = tmp_path / "m.jsonl"
        with RunMetrics(path=metrics_path, progress=False) as metrics:
            result = run_sharded(
                module,
                checkpoint=CheckpointStore(store_dir, resume=True),
                metrics=metrics,
            )
        assert "{1: 2}" in result.text  # the odd cell still ran
        assert len(list(store_dir.glob("*.ckpt.json"))) == 1
        records = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        odd = [
            r
            for r in records
            if r["event"] == "checkpoint" and r["cell"] == "odd"
        ]
        assert [r["action"] for r in odd] == ["unfingerprintable"]

    def test_resume_served_payload_survives_pickle_exactly(
        self, tmp_path
    ):
        # Tuples, numpy-free nested structures etc. must come back as
        # the exact objects combine() saw the first time.
        calls = tmp_path / "calls.txt"
        module = _fixture_module(calls)
        store_dir = tmp_path / "ckpt"
        first = run_sharded(module, checkpoint=CheckpointStore(store_dir))
        second = run_sharded(
            module, checkpoint=CheckpointStore(store_dir, resume=True)
        )
        assert repr(first.data) == repr(second.data)
