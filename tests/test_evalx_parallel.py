"""Parallel experiment engine: determinism, ordering, error reporting."""

from __future__ import annotations

import os

import pytest

from repro.errors import ExperimentError
from repro.evalx.parallel import Cell, execute_cells, resolve_jobs
from repro.evalx.registry import run_experiment

#: Small traces keep the double (serial + parallel) runs cheap.
_TASKS = 12_000


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"bad input {x}")


class TestResolveJobs:
    def test_default_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_jobs(-1)


class TestExecuteCells:
    def _cells(self, values):
        return [
            Cell(label=f"c{v}", fn=_square, kwargs={"x": v})
            for v in values
        ]

    def test_serial_preserves_cell_order(self):
        assert execute_cells(self._cells([3, 1, 2])) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        cells = self._cells(range(8))
        assert execute_cells(cells, jobs=3) == execute_cells(cells)

    @pytest.mark.parametrize("jobs", [None, 2])
    def test_failure_names_the_cell(self, jobs):
        cells = [
            Cell(label="good", fn=_square, kwargs={"x": 2}),
            Cell(label="broken-cell", fn=_boom, kwargs={"x": 7}),
        ]
        with pytest.raises(ExperimentError, match="broken-cell") as info:
            execute_cells(cells, jobs=jobs)
        # The original exception stays attached for debugging.
        assert "bad input 7" in str(info.value)


class TestJobsBitIdentical:
    """run_experiment(..., jobs=N) must equal the serial run exactly."""

    def test_figure7_quick(self):
        serial = run_experiment(
            "figure7", n_tasks=_TASKS, quick=True,
            benchmarks=("gcc", "compress"),
        )
        fanned = run_experiment(
            "figure7", n_tasks=_TASKS, quick=True,
            benchmarks=("gcc", "compress"), jobs=4,
        )
        assert fanned.data == serial.data
        assert fanned.text == serial.text

    def test_table3_quick(self):
        serial = run_experiment("table3", n_tasks=_TASKS, quick=True)
        fanned = run_experiment(
            "table3", n_tasks=_TASKS, quick=True, jobs=4
        )
        assert fanned.data == serial.data
        assert fanned.text == serial.text
