"""Parallel experiment engine: determinism, ordering, error reporting."""

from __future__ import annotations

import os
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.errors import ExperimentError
from repro.evalx.metrics import RunMetrics
from repro.evalx.parallel import (
    Cell,
    RetryPolicy,
    _PooledRun,
    _run_cell_instrumented,
    execute_cells,
    resolve_jobs,
)
from repro.evalx.registry import run_experiment

#: Small traces keep the double (serial + parallel) runs cheap.
_TASKS = 12_000


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise ValueError(f"bad input {x}")


class TestResolveJobs:
    def test_default_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_jobs(-1)


class TestExecuteCells:
    def _cells(self, values):
        return [
            Cell(label=f"c{v}", fn=_square, kwargs={"x": v})
            for v in values
        ]

    def test_serial_preserves_cell_order(self):
        assert execute_cells(self._cells([3, 1, 2])) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        cells = self._cells(range(8))
        assert execute_cells(cells, jobs=3) == execute_cells(cells)

    @pytest.mark.parametrize("jobs", [None, 2])
    def test_failure_names_the_cell(self, jobs):
        cells = [
            Cell(label="good", fn=_square, kwargs={"x": 2}),
            Cell(label="broken-cell", fn=_boom, kwargs={"x": 7}),
        ]
        with pytest.raises(ExperimentError, match="broken-cell") as info:
            execute_cells(cells, jobs=jobs)
        # The original exception stays attached for debugging.
        assert "bad input 7" in str(info.value)


class TestJobsBitIdentical:
    """run_experiment(..., jobs=N) must equal the serial run exactly."""

    def test_figure7_quick(self):
        serial = run_experiment(
            "figure7", n_tasks=_TASKS, quick=True,
            benchmarks=("gcc", "compress"),
        )
        fanned = run_experiment(
            "figure7", n_tasks=_TASKS, quick=True,
            benchmarks=("gcc", "compress"), jobs=4,
        )
        assert fanned.data == serial.data
        assert fanned.text == serial.text

    def test_table3_quick(self):
        serial = run_experiment("table3", n_tasks=_TASKS, quick=True)
        fanned = run_experiment(
            "table3", n_tasks=_TASKS, quick=True, jobs=4
        )
        assert fanned.data == serial.data
        assert fanned.text == serial.text


class _SubmitBrokenPool:
    """Stands in for a pool whose last worker died just before submit.

    ``ProcessPoolExecutor.submit`` raises ``BrokenProcessPool`` itself
    once the pool is broken — a different entry point from the usual
    ``future.result()`` crash surface.
    """

    def __init__(self, inner):
        self._inner = inner
        self.raised = False

    def submit(self, *args, **kwargs):
        self.raised = True
        raise BrokenProcessPool("worker died before this submit")

    def shutdown(self, **kwargs):
        self._inner.shutdown(**kwargs)


class _AttemptRecorder(RunMetrics):
    """A disabled recorder that remembers every cell attempt."""

    def __init__(self):
        super().__init__(path=None, progress=False)
        self.attempts = []

    def cell_attempt(self, label, status, attempt, **kwargs):
        self.attempts.append((label, attempt, status))


class TestSubmitTimeCrash:
    """A BrokenProcessPool raised *at submit time* must route through
    crash recovery instead of escaping ``run()`` raw."""

    def test_run_recovers_and_completes(self):
        cells = [
            Cell(label=f"c{v}", fn=_square, kwargs={"x": v})
            for v in (2, 3, 4)
        ]
        run = _PooledRun(
            cells, 2, RetryPolicy(), False, RunMetrics.disabled()
        )
        broken = _SubmitBrokenPool(run.pool)
        run.pool = broken
        assert run.run() == [4, 9, 16]
        assert broken.raised
        # Recovery rebuilt the pool in isolated (exact-attribution) mode.
        assert run.isolated

    def test_unrun_cell_is_not_charged_an_attempt(self):
        recorder = _AttemptRecorder()
        cells = [Cell(label="c", fn=_square, kwargs={"x": 6})]
        run = _PooledRun(cells, 1, RetryPolicy(), False, recorder)
        run.pool = _SubmitBrokenPool(run.pool)
        assert run.run() == [36]
        # The aborted submit never ran the cell, so the one real run
        # must count as attempt 1, not 2.
        assert recorder.attempts == [("c", 1, "ok")]


class TestCacheDeltaCounters:
    def test_counter_born_between_snapshots(self, monkeypatch):
        """A cache counter that first appears while the cell runs must
        show up as its own delta, not raise KeyError."""
        snapshots = iter([{}, {"program_builds": 3, "zero": 0}])
        monkeypatch.setattr(
            "repro.evalx.parallel.cache_counters",
            lambda: dict(next(snapshots)),
        )
        outcome = _run_cell_instrumented(
            Cell(label="c", fn=_square, kwargs={"x": 5})
        )
        assert outcome.payload == 25
        assert outcome.cache == {"program_builds": 3}
