"""Tests for the functional prediction simulators."""

import pytest

from repro.predictors.exit_predictors import SimpleExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.ideal import IdealPathPredictor
from repro.predictors.task_predictor import PerfectTaskPredictor
from repro.predictors.ttb import (
    CorrelatedTaskTargetBuffer,
    TaskTargetBuffer,
)
from repro.sim.functional import (
    simulate_exit_prediction,
    simulate_indirect_target_prediction,
    simulate_task_prediction,
)
from repro.sim.result import (
    ExitPredictionStats,
    TargetPredictionStats,
    TaskPredictionStats,
)
from repro.synth.behavior import FixedChoice, PeriodicChoice
from repro.synth.trace import CF_TYPE_CODES
from repro.isa.controlflow import ControlFlowType

from tests.helpers import (
    compile_small,
    diamond_program,
    make_workload,
    run_trace,
    switch_program,
)


def diamond_workload(behavior, n=200):
    compiled = compile_small(diamond_program(behavior), max_blocks=1)
    return make_workload(compiled, run_trace(compiled, n))


class TestSimulateExitPrediction:
    def test_fixed_branch_eventually_never_misses(self):
        workload = diamond_workload(FixedChoice(0))
        stats = simulate_exit_prediction(
            workload, SimpleExitPredictor(index_bits=8)
        )
        # Only warmup misses: far fewer than the number of trials.
        assert stats.misses <= 4

    def test_alternating_branch_defeats_depth0(self):
        workload = diamond_workload(PeriodicChoice((0, 1)))
        depth0 = simulate_exit_prediction(
            workload, SimpleExitPredictor(index_bits=8)
        )
        deep = simulate_exit_prediction(workload, IdealPathPredictor(4))
        assert deep.misses < depth0.misses

    def test_trials_count_all_records(self):
        workload = diamond_workload(FixedChoice(0), n=123)
        stats = simulate_exit_prediction(
            workload, SimpleExitPredictor(index_bits=8)
        )
        assert stats.trials == 123
        assert stats.multiway_trials <= stats.trials

    def test_limit_truncates(self):
        workload = diamond_workload(FixedChoice(0), n=100)
        stats = simulate_exit_prediction(
            workload, SimpleExitPredictor(index_bits=8), limit=10
        )
        assert stats.trials == 10

    def test_miss_rates_consistent(self):
        workload = diamond_workload(PeriodicChoice((0, 1, 1)))
        stats = simulate_exit_prediction(workload, IdealPathPredictor(0))
        assert 0.0 <= stats.miss_rate <= 1.0
        assert stats.multiway_misses == stats.misses
        if stats.multiway_trials:
            assert stats.multiway_miss_rate >= stats.miss_rate


class TestSimulateIndirectTargetPrediction:
    def test_counts_only_indirect_records(self):
        workload = make_workload(
            *_switch_workload(PeriodicChoice((0, 1, 2)), n=90)
        )
        ib = CF_TYPE_CODES[ControlFlowType.INDIRECT_BRANCH]
        expected = int((workload.trace.cf_type == ib).sum())
        stats = simulate_indirect_target_prediction(
            workload, TaskTargetBuffer(index_bits=8)
        )
        assert stats.trials == expected

    def test_cttb_beats_ttb_on_path_dependent_targets(self):
        """A switch cycling targets defeats the TTB but the periodic cycle
        is visible in the task path (case blocks differ), so the CTTB
        learns it — the core claim of §5.3."""
        compiled, trace = _switch_workload(PeriodicChoice((0, 1)), n=400)
        workload = make_workload(compiled, trace)
        ttb = simulate_indirect_target_prediction(
            workload, TaskTargetBuffer(index_bits=10)
        )
        cttb = simulate_indirect_target_prediction(
            workload,
            CorrelatedTaskTargetBuffer(DolcSpec.parse("3-5-6-6(2)")),
        )
        assert cttb.misses < ttb.misses

    def test_no_indirects_gives_zero_trials(self):
        workload = diamond_workload(FixedChoice(0))
        stats = simulate_indirect_target_prediction(
            workload, TaskTargetBuffer(index_bits=8)
        )
        assert stats.trials == 0
        assert stats.miss_rate == 0.0


def _switch_workload(behavior, n):
    compiled = compile_small(switch_program(behavior, arity=3))
    return compiled, run_trace(compiled, n)


class TestSimulateTaskPrediction:
    def test_perfect_predictor_never_misses(self, compress_workload):
        stats = simulate_task_prediction(
            compress_workload,
            PerfectTaskPredictor(compress_workload.trace),
        )
        assert stats.address_misses == 0
        assert stats.trials == len(compress_workload.trace)

    def test_per_type_breakdown_sums(self, compress_workload):
        stats = simulate_task_prediction(
            compress_workload,
            PerfectTaskPredictor(compress_workload.trace),
        )
        assert sum(stats.trials_by_type.values()) == stats.trials

    def test_limit(self, compress_workload):
        limited = compress_workload.trace.head(50)
        stats = simulate_task_prediction(
            compress_workload,
            PerfectTaskPredictor(limited),
            limit=50,
        )
        assert stats.trials == 50


class TestResultRecords:
    def test_exit_stats_zero_trials(self):
        stats = ExitPredictionStats(0, 0, 0, 0, 0, 0)
        assert stats.miss_rate == 0.0
        assert stats.multiway_miss_rate == 0.0

    def test_target_stats_rates(self):
        stats = TargetPredictionStats(
            trials=10, misses=3, entries_touched=5, storage_bits=0
        )
        assert stats.miss_rate == pytest.approx(0.3)

    def test_task_stats_type_rates(self):
        stats = TaskPredictionStats(
            trials=10,
            address_misses=4,
            misses_by_type={"return": 4},
            trials_by_type={"return": 5, "branch": 5},
        )
        assert stats.miss_rate_for("return") == pytest.approx(0.8)
        assert stats.miss_rate_for("branch") == 0.0
        assert stats.miss_rate_for("nothing") == 0.0
