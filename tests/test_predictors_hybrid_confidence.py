"""Tests for the tournament predictor and confidence estimation."""

import pytest

from repro.errors import PredictorConfigError
from repro.predictors.confidence import (
    ResettingConfidenceEstimator,
    simulate_confidence,
)
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.hybrid import TournamentExitPredictor
from repro.predictors.ideal import IdealPathPredictor, IdealPerTaskPredictor
from repro.sim.functional import simulate_exit_prediction

_SPEC = DolcSpec.parse("4-5-6-7(2)")


class _AlwaysPredicts:
    """Stub exit predictor returning a fixed exit."""

    def __init__(self, exit_index):
        self._exit = exit_index
        self.updates = 0

    def predict(self, task_addr, n_exits):
        return self._exit

    def update(self, task_addr, n_exits, actual_exit):
        self.updates += 1

    def states_touched(self):
        return 1

    def storage_bits(self):
        return 8


class TestTournamentExitPredictor:
    def test_chooser_validation(self):
        with pytest.raises(PredictorConfigError):
            TournamentExitPredictor(
                _AlwaysPredicts(0), _AlwaysPredicts(1),
                chooser_index_bits=0,
            )

    def test_initially_prefers_first(self):
        hybrid = TournamentExitPredictor(
            _AlwaysPredicts(0), _AlwaysPredicts(1)
        )
        assert hybrid.predict(0x100, 2) == 0

    def test_learns_to_prefer_correct_component(self):
        hybrid = TournamentExitPredictor(
            _AlwaysPredicts(0), _AlwaysPredicts(1)
        )
        # Component 2 is always right; after a few disagreements the
        # chooser must flip to it.
        for _ in range(4):
            hybrid.predict(0x100, 2)
            hybrid.update(0x100, 2, actual_exit=1)
        assert hybrid.predict(0x100, 2) == 1

    def test_chooser_is_per_task(self):
        hybrid = TournamentExitPredictor(
            _AlwaysPredicts(0), _AlwaysPredicts(1)
        )
        for _ in range(4):
            hybrid.predict(0x100, 2)
            hybrid.update(0x100, 2, actual_exit=1)
        # Task 0x200 was never trained: still prefers the first component.
        assert hybrid.predict(0x204, 2) == 0

    def test_both_components_trained(self):
        first, second = _AlwaysPredicts(0), _AlwaysPredicts(1)
        hybrid = TournamentExitPredictor(first, second)
        hybrid.predict(0x100, 2)
        hybrid.update(0x100, 2, 0)
        assert first.updates == 1
        assert second.updates == 1

    def test_storage_sums_components_and_chooser(self):
        hybrid = TournamentExitPredictor(
            _AlwaysPredicts(0), _AlwaysPredicts(1), chooser_index_bits=4
        )
        assert hybrid.storage_bits() == 8 + 8 + 16 * 2

    def test_matches_better_component_on_workloads(
        self, gcc_workload, sc_workload
    ):
        """The tournament must not lose to its better component by more
        than a whisker on either a PATH-favouring or PER-favouring load."""
        for workload in (gcc_workload, sc_workload):
            path = simulate_exit_prediction(
                workload, IdealPathPredictor(4)
            ).miss_rate
            per = simulate_exit_prediction(
                workload, IdealPerTaskPredictor(4)
            ).miss_rate
            hybrid = simulate_exit_prediction(
                workload,
                TournamentExitPredictor(
                    IdealPathPredictor(4), IdealPerTaskPredictor(4)
                ),
            ).miss_rate
            assert hybrid <= min(path, per) + 0.01


class TestResettingConfidenceEstimator:
    def test_validation(self):
        with pytest.raises(PredictorConfigError):
            ResettingConfidenceEstimator(_SPEC, threshold=0)
        with pytest.raises(PredictorConfigError):
            ResettingConfidenceEstimator(_SPEC, threshold=8, counter_max=4)

    def test_cold_entry_is_low_confidence(self):
        estimator = ResettingConfidenceEstimator(_SPEC, threshold=2)
        assert not estimator.is_high_confidence(0x100)

    def test_consecutive_correct_builds_confidence(self):
        estimator = ResettingConfidenceEstimator(
            DolcSpec.parse("0-0-0-8(1)"), threshold=3
        )
        for _ in range(3):
            estimator.update(0x100, correct=True)
        assert estimator.is_high_confidence(0x100)

    def test_single_miss_resets(self):
        estimator = ResettingConfidenceEstimator(
            DolcSpec.parse("0-0-0-8(1)"), threshold=2
        )
        for _ in range(5):
            estimator.update(0x100, correct=True)
        estimator.update(0x100, correct=False)
        assert not estimator.is_high_confidence(0x100)

    def test_counter_saturates(self):
        estimator = ResettingConfidenceEstimator(
            DolcSpec.parse("0-0-0-8(1)"), threshold=2, counter_max=3
        )
        for _ in range(100):
            estimator.update(0x100, correct=True)
        assert estimator.is_high_confidence(0x100)

    def test_storage_accounting(self):
        estimator = ResettingConfidenceEstimator(
            DolcSpec.parse("0-0-0-8(1)"), threshold=4, counter_max=15
        )
        assert estimator.storage_bits() == 256 * 4


class TestSimulateConfidence:
    def test_metrics_consistent(self, compress_workload):
        stats = simulate_confidence(
            compress_workload,
            PathExitPredictor(_SPEC),
            ResettingConfidenceEstimator(_SPEC, threshold=4),
        )
        assert stats.trials == len(compress_workload.trace)
        assert stats.high_confidence + stats.low_confidence == stats.trials
        assert 0.0 <= stats.coverage <= 1.0
        assert stats.high_correct <= stats.high_confidence

    def test_high_confidence_beats_overall_accuracy(self, gcc_workload):
        """The whole point: flagged predictions are more accurate than the
        stream at large."""
        predictor_stats = simulate_exit_prediction(
            gcc_workload, PathExitPredictor(_SPEC)
        )
        confidence_stats = simulate_confidence(
            gcc_workload,
            PathExitPredictor(_SPEC),
            ResettingConfidenceEstimator(_SPEC, threshold=4),
        )
        overall_accuracy = 1.0 - predictor_stats.miss_rate
        assert (
            confidence_stats.high_confidence_accuracy > overall_accuracy
        )

    def test_pvn_beats_base_miss_rate(self, gcc_workload):
        """Low confidence must concentrate misses: PVN > base miss rate."""
        predictor_stats = simulate_exit_prediction(
            gcc_workload, PathExitPredictor(_SPEC)
        )
        confidence_stats = simulate_confidence(
            gcc_workload,
            PathExitPredictor(_SPEC),
            ResettingConfidenceEstimator(_SPEC, threshold=4),
        )
        assert confidence_stats.pvn > predictor_stats.miss_rate

    def test_higher_threshold_raises_accuracy_lowers_coverage(
        self, gcc_workload
    ):
        def run(threshold):
            return simulate_confidence(
                gcc_workload,
                PathExitPredictor(_SPEC),
                ResettingConfidenceEstimator(_SPEC, threshold=threshold),
            )

        low = run(1)
        high = run(8)
        assert high.coverage < low.coverage
        assert (
            high.high_confidence_accuracy
            >= low.high_confidence_accuracy - 0.002
        )
