"""Shared fixtures: small benchmark workloads, cached per test session."""

from __future__ import annotations

import os

import pytest

# Tests must not read or write the on-disk trace cache of a real checkout.
os.environ.setdefault("REPRO_CACHE_DIR", "off")

from repro.synth.workloads import load_workload  # noqa: E402

#: Trace length used by fixture workloads: big enough for predictors to
#: train, small enough to keep the suite fast.
SMALL_TRACE = 20_000


@pytest.fixture(scope="session")
def gcc_workload():
    """A small gcc workload (large task working set, indirect exits)."""
    return load_workload("gcc", n_tasks=SMALL_TRACE)


@pytest.fixture(scope="session")
def compress_workload():
    """A small compress workload (tiny working set, noisy branches)."""
    return load_workload("compress", n_tasks=SMALL_TRACE)


@pytest.fixture(scope="session")
def sc_workload():
    """A small sc workload (per-task cyclic behaviour)."""
    return load_workload("sc", n_tasks=SMALL_TRACE)


@pytest.fixture(scope="session")
def xlisp_workload():
    """A small xlisp workload (recursion, calls, indirect calls)."""
    return load_workload("xlisp", n_tasks=SMALL_TRACE)
