"""Targeted edge-case tests across modules."""

import pytest

from repro.cfg.basicblock import TerminatorKind
from repro.compiler import PartitionConfig
from repro.compiler.partitioner import TaskPartitioner
from repro.errors import PartitionError, SimulationError
from repro.synth.behavior import BiasedChoice

from tests.helpers import block, diamond_program


class TestPartitionerEdges:
    def test_unsplittable_single_block_raises(self):
        """A conditional branch whose two arms are forced task starts has
        two distinct exit targets even as a single-block task: under a
        1-exit budget the partitioner must fail loudly rather than emit an
        illegal header."""
        from repro.cfg.graph import ControlFlowGraph
        from repro.synth.behavior import FixedChoice

        cfg = ControlFlowGraph("f", entry_label="f.entry")
        cfg.add_block(block("f.entry", TerminatorKind.JUMP, ("f.cond",)))
        cfg.add_block(
            block(
                "f.cond",
                TerminatorKind.COND_BRANCH,
                ("f.a", "f.b"),
                behavior=BiasedChoice(0.5),
            )
        )
        # f.a is also targeted by f.join, so both arms are multi-pred
        # leaders that cannot be absorbed into f.cond's task.
        cfg.add_block(block("f.a", TerminatorKind.JUMP, ("f.join",)))
        cfg.add_block(block("f.b", TerminatorKind.JUMP, ("f.join",)))
        cfg.add_block(
            block(
                "f.join",
                TerminatorKind.COND_BRANCH,
                ("f.a", "f.ret"),
                behavior=FixedChoice(1),
            )
        )
        cfg.add_block(block("f.ret", TerminatorKind.RETURN))
        with pytest.raises(PartitionError):
            TaskPartitioner(
                cfg, PartitionConfig(max_exits_per_task=1)
            ).partition()

    def test_diamond_fits_one_exit_budget(self):
        """Both arms of a diamond share the join target, so the whole
        diamond legally collapses into a single one-exit task."""
        program = diamond_program(BiasedChoice(0.5))
        regions = TaskPartitioner(
            program.function("main"),
            PartitionConfig(max_exits_per_task=1),
        ).partition()
        for region in regions:
            assert len(region.exit_descriptors) <= 1

    def test_two_exit_budget_suffices_for_diamond(self):
        program = diamond_program(BiasedChoice(0.5))
        regions = TaskPartitioner(
            program.function("main"),
            PartitionConfig(max_exits_per_task=2),
        ).partition()
        for region in regions:
            assert len(region.exit_descriptors) <= 2

    def test_unreachable_blocks_ignored(self):
        from repro.cfg.graph import ControlFlowGraph

        cfg = ControlFlowGraph("f", entry_label="f.a")
        cfg.add_block(block("f.a", TerminatorKind.RETURN))
        cfg.add_block(block("f.dead", TerminatorKind.JUMP, ("f.a",)))
        regions = TaskPartitioner(cfg, PartitionConfig()).partition()
        assigned = {label for r in regions for label in r.blocks}
        assert "f.dead" not in assigned


class TestSimulatorEdges:
    def test_exit_simulation_detects_corrupt_trace(self, compress_workload):
        """A single-exit task recorded with exit 1 is a corrupt trace; the
        simulator must refuse rather than mis-count."""
        from repro.sim.functional import simulate_exit_prediction
        from repro.predictors.ideal import IdealPathPredictor
        from repro.synth.trace import TaskTrace
        from repro.synth.workloads import Workload

        trace = compress_workload.trace
        n_exits_of = compress_workload.exit_counts()
        # Find a single-exit record and corrupt its exit index.
        position = next(
            i for i, a in enumerate(trace.task_addr.tolist())
            if n_exits_of[a] == 1
        )
        exit_index = trace.exit_index.copy()
        exit_index[position] = 1
        corrupt = Workload(
            profile=compress_workload.profile,
            compiled=compress_workload.compiled,
            trace=TaskTrace(
                task_addr=trace.task_addr,
                exit_index=exit_index,
                cf_type=trace.cf_type,
                next_addr=trace.next_addr,
                instructions=trace.instructions,
                internal_branches=trace.internal_branches,
                internal_mispredicts=trace.internal_mispredicts,
            ),
        )
        with pytest.raises(SimulationError):
            simulate_exit_prediction(corrupt, IdealPathPredictor(2))

    def test_relaxed_sim_handles_unknown_wrong_path_target(
        self, compress_workload
    ):
        """Wrong-path walking must stop gracefully at targets that are not
        task starts (e.g. stale header targets)."""
        from repro.predictors.folding import DolcSpec
        from repro.predictors.speculative import SpeculativePathPredictor
        from repro.sim.relaxed import simulate_speculative_exit_prediction

        stats = simulate_speculative_exit_prediction(
            compress_workload,
            SpeculativePathPredictor(
                DolcSpec.parse("2-4-5-5(1)"), repair="squash"
            ),
            wrong_path_depth=8,
        )
        assert stats.trials == len(compress_workload.trace)


class TestChartEdges:
    def test_single_series_many_points(self):
        from repro.evalx.charts import render_chart

        chart = render_chart(
            list(range(50)),
            {"s": [0.5 - 0.005 * i for i in range(50)]},
            height=8,
            width=30,
        )
        assert chart.count("\n") >= 8

    def test_negative_values_supported(self):
        from repro.evalx.charts import render_chart

        chart = render_chart(
            [0, 1, 2],
            {"delta": [-0.05, 0.0, 0.08]},
            as_percent=False,
        )
        assert "-0.050" in chart
