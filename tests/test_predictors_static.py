"""Tests for profile-guided static hint prediction."""

import pytest

from repro.errors import PredictorConfigError
from repro.predictors.static_hints import StaticHintExitPredictor
from repro.sim.functional import simulate_exit_prediction


class TestStaticHintExitPredictor:
    def test_predicts_hinted_exit(self):
        predictor = StaticHintExitPredictor({0x100: 2})
        assert predictor.predict(0x100, 4) == 2

    def test_unhinted_task_defaults_to_zero(self):
        predictor = StaticHintExitPredictor({})
        assert predictor.predict(0x999, 3) == 0

    def test_hint_clamped_to_n_exits(self):
        predictor = StaticHintExitPredictor({0x100: 3})
        assert predictor.predict(0x100, 2) == 1

    def test_update_never_adapts(self):
        predictor = StaticHintExitPredictor({0x100: 1})
        for _ in range(10):
            predictor.update(0x100, 4, 3)
        assert predictor.predict(0x100, 4) == 1

    def test_negative_hint_rejected(self):
        with pytest.raises(PredictorConfigError):
            StaticHintExitPredictor({0x100: -1})

    def test_storage_two_bits_per_hint(self):
        predictor = StaticHintExitPredictor({0x100: 1, 0x200: 0})
        assert predictor.storage_bits() == 4
        assert predictor.n_hints == 2


class TestProfiling:
    def test_profile_learns_majority_exit(self, compress_workload):
        predictor = StaticHintExitPredictor.profile_from_trace(
            compress_workload.trace, training_fraction=0.5
        )
        assert predictor.n_hints > 0
        stats = simulate_exit_prediction(compress_workload, predictor)
        # Static hints must beat always-exit-0 (which misses every record
        # whose majority exit isn't 0).
        always_zero = StaticHintExitPredictor({})
        baseline = simulate_exit_prediction(compress_workload, always_zero)
        assert stats.misses <= baseline.misses

    def test_training_fraction_validation(self, compress_workload):
        with pytest.raises(PredictorConfigError):
            StaticHintExitPredictor.profile_from_trace(
                compress_workload.trace, training_fraction=0.0
            )

    def test_dynamic_path_beats_static(self, gcc_workload):
        """The reason dynamic predictors exist: history beats bias."""
        from repro.predictors.exit_predictors import PathExitPredictor
        from repro.predictors.folding import DolcSpec

        static = StaticHintExitPredictor.profile_from_trace(
            gcc_workload.trace, training_fraction=1.0
        )  # even with oracle-complete profiling...
        static_stats = simulate_exit_prediction(gcc_workload, static)
        path_stats = simulate_exit_prediction(
            gcc_workload, PathExitPredictor(DolcSpec.parse("6-5-8-9(3)"))
        )
        assert path_stats.misses < static_stats.misses

    def test_ext_static_experiment(self):
        from repro.evalx.registry import run_experiment

        result = run_experiment("ext_static", quick=True)
        for name, row in result.data.items():
            # PATH dominates static hints everywhere.
            assert row["path"] <= row["static"] + 0.005