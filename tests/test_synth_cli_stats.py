"""Tests for the synth CLI and the shared statistics view."""

import pytest

from repro.synth.__main__ import main as synth_main
from repro.synth.stats_view import EXIT_TYPES, compute_stats
from repro.synth.trace import TaskTrace


class TestComputeStats:
    def test_distributions_sum_to_one(self, gcc_workload):
        stats = compute_stats(gcc_workload)
        assert sum(stats.static_arity.values()) == pytest.approx(1.0)
        assert sum(stats.dynamic_arity.values()) == pytest.approx(1.0)
        assert sum(stats.static_types.values()) == pytest.approx(1.0)
        assert sum(stats.dynamic_types.values()) == pytest.approx(1.0)

    def test_indirect_share_consistent(self, gcc_workload):
        stats = compute_stats(gcc_workload)
        manual = (
            stats.dynamic_types["indirect_branch"]
            + stats.dynamic_types["indirect_call"]
        )
        assert stats.dynamic_indirect_share == pytest.approx(manual)

    def test_instructions_per_task_positive(self, compress_workload):
        stats = compute_stats(compress_workload)
        assert stats.instructions_per_task > 1.0

    def test_exit_types_order(self):
        names = [str(t) for t in EXIT_TYPES]
        assert names == [
            "branch", "call", "return", "indirect_branch", "indirect_call",
        ]

    def test_matches_figure_drivers(self, compress_workload):
        """The figure3 driver and compute_stats must agree (they share the
        implementation; this guards against drift if one is edited)."""
        from repro.evalx.registry import run_experiment

        stats = compute_stats(compress_workload)
        result = run_experiment(
            "figure3", n_tasks=len(compress_workload.trace)
        )
        assert result.data["compress"]["static"] == pytest.approx(
            stats.static_arity
        )


class TestSynthCli:
    def test_list(self, capsys):
        assert synth_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out
        assert "12525" in out

    def test_info(self, capsys):
        assert synth_main(["info", "compress", "--tasks", "5000"]) == 0
        out = capsys.readouterr().out
        assert "validation: compress" in out
        assert "distinct tasks seen" in out

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "t.npz"
        assert synth_main(
            ["trace", "compress", str(out_path), "--tasks", "2000"]
        ) == 0
        loaded = TaskTrace.load(out_path)
        assert len(loaded) == 2000
        assert loaded.program_name == "compress"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            synth_main(["info", "quake"])
