"""Unit tests for the per-function CFG builder.

These pin the graph shapes the flow-sensitive rules depend on: branch
edges labelled with condition + polarity, loop back edges, break/
continue routing, exceptional edges from try bodies into handlers and
finally blocks, and the forward-reachability query. Fixtures are tiny
single-function snippets; nodes are located by the source text of the
statement they carry.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.analysis.cfg import CFG, CFGNode, build_cfg, function_defs


def _cfg(source: str) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    fns = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    assert len(fns) == 1
    return build_cfg(fns[0])


def _node(cfg: CFG, marker: str, kind: str | None = None) -> CFGNode:
    """The statement node whose header line contains ``marker``.

    Only the first unparsed line is matched so compound statements
    (whose unparse includes their whole body) are found by their
    header, not by the statements nested inside them.
    """
    hits = [
        node
        for node in cfg.statement_nodes()
        if marker in ast.unparse(node.stmt).splitlines()[0]
        and (kind is None or node.kind == kind)
    ]
    assert hits, f"no node matching {marker!r}"
    return hits[0]


def _reaches(cfg: CFG, src: CFGNode, dst: CFGNode) -> bool:
    return cfg.reaches(src.index, {dst.index})


class TestLinearFlow:
    def test_statements_chain_in_order_to_exit(self):
        cfg = _cfg("""\
            def fn():
                a = 1
                b = 2
                c = 3
            """)
        a, b, c = (_node(cfg, m) for m in ("a = 1", "b = 2", "c = 3"))
        assert _reaches(cfg, a, b)
        assert _reaches(cfg, b, c)
        assert not _reaches(cfg, c, a)
        assert cfg.reaches(c.index, {cfg.exit})

    def test_reaches_excludes_the_source_node_itself(self):
        cfg = _cfg("""\
            def fn():
                a = 1
            """)
        a = _node(cfg, "a = 1")
        assert not cfg.reaches(a.index, {a.index})


class TestBranches:
    def test_if_edges_carry_condition_and_polarity(self):
        cfg = _cfg("""\
            def fn(flag):
                if flag:
                    a = 1
                else:
                    b = 2
                c = 3
            """)
        cond = _node(cfg, "if flag", kind="cond")
        assert cond.expr is not None
        polarities = {
            edge.polarity for edge in cond.edges if edge.cond is not None
        }
        assert polarities == {True, False}
        for edge in cond.edges:
            if edge.cond is not None:
                assert ast.unparse(edge.cond) == "flag"

    def test_arms_are_exclusive_but_rejoin(self):
        cfg = _cfg("""\
            def fn(flag):
                if flag:
                    a = 1
                else:
                    b = 2
                c = 3
            """)
        a, b, c = (_node(cfg, m) for m in ("a = 1", "b = 2", "c = 3"))
        assert not _reaches(cfg, a, b)
        assert not _reaches(cfg, b, a)
        assert _reaches(cfg, a, c)
        assert _reaches(cfg, b, c)

    def test_match_cases_all_reach_the_join(self):
        cfg = _cfg("""\
            def fn(x):
                match x:
                    case 1:
                        a = 1
                    case _:
                        b = 2
                c = 3
            """)
        a, b, c = (_node(cfg, m) for m in ("a = 1", "b = 2", "c = 3"))
        subject = _node(cfg, "match x")
        assert _reaches(cfg, subject, a)
        assert _reaches(cfg, subject, b)
        assert _reaches(cfg, a, c)
        assert _reaches(cfg, b, c)


class TestLoops:
    def test_while_body_loops_back_through_the_header(self):
        cfg = _cfg("""\
            def fn(n):
                while n:
                    n = n - 1
                done = 1
            """)
        body = _node(cfg, "n = n - 1")
        done = _node(cfg, "done = 1")
        # The back edge makes the body reachable from itself.
        assert _reaches(cfg, body, body)
        assert _reaches(cfg, body, done)

    def test_for_header_offers_body_and_exhausted_edges(self):
        cfg = _cfg("""\
            def fn(items):
                for item in items:
                    a = item
                else:
                    b = 2
                c = 3
            """)
        a, b, c = (_node(cfg, m) for m in ("a = item", "b = 2", "c = 3"))
        header = _node(cfg, "for item in items", kind="for")
        assert _reaches(cfg, header, a)
        assert _reaches(cfg, header, b)
        assert _reaches(cfg, a, c)
        assert _reaches(cfg, b, c)

    def test_break_jumps_past_the_loop_tail(self):
        cfg = _cfg("""\
            def fn(items):
                for item in items:
                    break
                    dead = 1
                after = 2
            """)
        brk = _node(cfg, "break")
        after = _node(cfg, "after = 2")
        dead = _node(cfg, "dead = 1")
        assert _reaches(cfg, brk, after)
        assert not _reaches(cfg, brk, dead)
        assert not cfg.reaches(cfg.entry, {dead.index})

    def test_continue_returns_to_the_header(self):
        cfg = _cfg("""\
            def fn(items):
                for item in items:
                    continue
                    dead = 1
            """)
        cont = _node(cfg, "continue")
        header = _node(cfg, "for item in items", kind="for")
        dead = _node(cfg, "dead = 1")
        assert cfg.reaches(cont.index, {header.index})
        assert not _reaches(cfg, cont, dead)


class TestEarlyExits:
    def test_return_routes_to_exit_and_kills_fallthrough(self):
        cfg = _cfg("""\
            def fn(flag):
                if flag:
                    return 1
                live = 2
            """)
        ret = _node(cfg, "return 1")
        live = _node(cfg, "live = 2")
        assert cfg.reaches(ret.index, {cfg.exit})
        assert not _reaches(cfg, ret, live)
        assert cfg.reaches(cfg.entry, {live.index})

    def test_guard_return_makes_tail_unconditional_only_on_one_arm(self):
        # The shape the lease rules refine on: after the guard, only
        # the polarity-False edge flows into the publish site.
        cfg = _cfg("""\
            def fn(lost):
                if lost.is_set():
                    return
                publish()
            """)
        cond = _node(cfg, "lost.is_set()", kind="cond")
        publish = _node(cfg, "publish()")
        true_edges = [e for e in cond.edges if e.cond and e.polarity]
        false_edges = [
            e for e in cond.edges if e.cond and not e.polarity
        ]
        assert true_edges and false_edges
        assert not cfg.reaches(
            true_edges[0].dst, {publish.index}
        ) or cfg.reaches(false_edges[0].dst, {publish.index})
        assert cfg.reaches(false_edges[0].dst, {publish.index})


class TestExceptionFlow:
    def test_try_body_statements_may_jump_to_handlers(self):
        cfg = _cfg("""\
            def fn():
                try:
                    risky = 1
                except ValueError:
                    handled = 2
                after = 3
            """)
        risky = _node(cfg, "risky = 1")
        handled = _node(cfg, "handled = 2")
        after = _node(cfg, "after = 3")
        assert _reaches(cfg, risky, handled)
        assert _reaches(cfg, risky, after)
        assert _reaches(cfg, handled, after)

    def test_raise_reaches_the_enclosing_handler(self):
        cfg = _cfg("""\
            def fn():
                try:
                    raise ValueError()
                except ValueError:
                    handled = 2
            """)
        rais = _node(cfg, "raise ValueError()")
        handled = _node(cfg, "handled = 2")
        assert _reaches(cfg, rais, handled)

    def test_finally_runs_on_both_routes(self):
        cfg = _cfg("""\
            def fn():
                try:
                    risky = 1
                finally:
                    cleanup = 2
                after = 3
            """)
        risky = _node(cfg, "risky = 1")
        cleanup = _node(cfg, "cleanup = 2")
        after = _node(cfg, "after = 3")
        assert _reaches(cfg, risky, cleanup)
        assert _reaches(cfg, cleanup, after)
        # The interrupted route propagates past the finally to exit.
        assert cfg.reaches(cleanup.index, {cfg.exit})

    def test_with_header_is_a_with_node(self):
        cfg = _cfg("""\
            def fn(path):
                with open(path) as handle:
                    data = handle.read()
            """)
        header = _node(cfg, "with open(path)", kind="with")
        data = _node(cfg, "data = handle.read()")
        assert _reaches(cfg, header, data)


class TestFunctionDefs:
    def test_qualnames_follow_baseline_convention(self):
        tree = ast.parse(textwrap.dedent("""\
            def top():
                def inner():
                    pass

            class Store:
                def save(self):
                    pass

                async def flush(self):
                    pass
            """))
        names = [name for name, _ in function_defs(tree)]
        assert names == [
            "top", "top.<locals>.inner", "Store.save", "Store.flush",
        ]

    def test_nested_defs_are_opaque_in_the_outer_cfg(self):
        cfg = _cfg("""\
            def fn():
                def helper():
                    hidden = 1
                a = 2
            """)
        a = _node(cfg, "a = 2")
        assert cfg.reaches(cfg.entry, {a.index})
        hidden = [
            node
            for node in cfg.statement_nodes()
            if "hidden" in ast.unparse(node.stmt)
            and not isinstance(node.stmt, ast.FunctionDef)
        ]
        assert hidden == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
