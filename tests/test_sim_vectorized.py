"""Batched simulation kernels must match the step-by-step loop exactly.

Every predictor that advertises a batched fast path (``batch_plan``,
``batch_slot_ids``, ``predict_column``) is checked here against the
generic loop (``vectorize=False``) on real workloads — same misses, same
states, same storage, bit for bit.
"""

from __future__ import annotations

import pytest

from repro.predictors.ideal import (
    IdealGlobalPredictor,
    IdealPathPredictor,
    IdealPerTaskPredictor,
)
from repro.predictors.static_hints import StaticHintExitPredictor
from repro.predictors.ttb import (
    IdealCorrelatedTargetBuffer,
    TaskTargetBuffer,
)
from repro.sim.functional import (
    simulate_exit_prediction,
    simulate_indirect_target_prediction,
)

_SCHEMES = (IdealGlobalPredictor, IdealPerTaskPredictor, IdealPathPredictor)
_DEPTHS = (0, 1, 3, 7)


def _assert_exit_stats_equal(workload, make_predictor):
    looped = simulate_exit_prediction(
        workload, make_predictor(), vectorize=False
    )
    batched = simulate_exit_prediction(
        workload, make_predictor(), vectorize=True
    )
    assert batched.trials == looped.trials
    assert batched.misses == looped.misses
    assert batched.multiway_trials == looped.multiway_trials
    assert batched.multiway_misses == looped.multiway_misses
    assert batched.states_touched == looped.states_touched
    assert batched.storage_bits == looped.storage_bits


class TestIdealExitKernels:
    @pytest.mark.parametrize("cls", _SCHEMES)
    @pytest.mark.parametrize("depth", _DEPTHS)
    def test_gcc(self, gcc_workload, cls, depth):
        _assert_exit_stats_equal(gcc_workload, lambda: cls(depth))

    @pytest.mark.parametrize("cls", _SCHEMES)
    def test_xlisp_deep(self, xlisp_workload, cls):
        _assert_exit_stats_equal(xlisp_workload, lambda: cls(7))

    @pytest.mark.parametrize("automaton", ["LE", "LEH-1", "LEH-2"])
    def test_automata_variants(self, gcc_workload, automaton):
        _assert_exit_stats_equal(
            gcc_workload,
            lambda: IdealPathPredictor(3, automaton=automaton),
        )

    def test_vc2_mru_tabulates(self, gcc_workload):
        # VC2-MRU's reachable state space is small (49 states), so its
        # batched replay goes through the tabulated FSM scan.
        _assert_exit_stats_equal(
            gcc_workload,
            lambda: IdealPathPredictor(2, automaton="VC2-MRU"),
        )

    @pytest.mark.parametrize("automaton", ["VC2-RANDOM", "VC3-MRU"])
    def test_untabulatable_automata_fall_back(self, gcc_workload, automaton):
        # RANDOM tie-breaking shares an rng across entries and VC3-MRU's
        # state space exceeds the tabulation cap; batch_plan must refuse.
        predictor = IdealPathPredictor(2, automaton=automaton)
        plan = predictor.batch_plan(
            gcc_workload.trace.task_addr, gcc_workload.trace.exit_index
        )
        assert plan is None

    def test_update_on_single_exit_falls_back(self, gcc_workload):
        predictor = IdealPathPredictor(2, update_on_single_exit=True)
        plan = predictor.batch_plan(
            gcc_workload.trace.task_addr, gcc_workload.trace.exit_index
        )
        assert plan is None


class TestStaticHintColumn:
    def test_matches_loop(self, gcc_workload):
        trace = gcc_workload.trace
        make = lambda: StaticHintExitPredictor.profile_from_trace(trace)
        _assert_exit_stats_equal(gcc_workload, make)

    def test_empty_hints(self, gcc_workload):
        _assert_exit_stats_equal(
            gcc_workload, lambda: StaticHintExitPredictor({})
        )


class TestTargetBufferKernels:
    @pytest.mark.parametrize("depth", _DEPTHS)
    def test_ideal_cttb(self, gcc_workload, depth):
        for make in (lambda: IdealCorrelatedTargetBuffer(depth),):
            looped = simulate_indirect_target_prediction(
                gcc_workload, make(), vectorize=False
            )
            batched = simulate_indirect_target_prediction(
                gcc_workload, make(), vectorize=True
            )
            assert batched == looped

    @pytest.mark.parametrize("index_bits", [6, 11])
    def test_plain_ttb(self, xlisp_workload, index_bits):
        looped = simulate_indirect_target_prediction(
            xlisp_workload,
            TaskTargetBuffer(index_bits=index_bits),
            vectorize=False,
        )
        batched = simulate_indirect_target_prediction(
            xlisp_workload,
            TaskTargetBuffer(index_bits=index_bits),
            vectorize=True,
        )
        assert batched == looped
