"""Tests for the cycle-stepped detailed timing model."""

import pytest

from repro.errors import SimulationError
from repro.predictors.task_predictor import PerfectTaskPredictor
from repro.sim.timing import (
    TimingConfig,
    simulate_timing,
    simulate_timing_detailed,
)
from repro.evalx.experiments.table4 import _make_predictor


class TestCrossValidation:
    """The detailed and analytic models describe the same machine: their
    IPCs must agree closely on identical inputs."""

    @pytest.mark.parametrize("scheme", ["Simple", "PATH", "Perfect"])
    def test_models_agree_on_compress(self, compress_workload, scheme):
        detailed = simulate_timing_detailed(
            compress_workload,
            _make_predictor(scheme, compress_workload),
            limit=5000,
        )
        analytic = simulate_timing(
            compress_workload,
            _make_predictor(scheme, compress_workload),
            limit=5000,
        )
        assert detailed.ipc == pytest.approx(analytic.ipc, rel=0.10)
        assert detailed.task_mispredicts == analytic.task_mispredicts

    def test_models_agree_on_gcc(self, gcc_workload):
        detailed = simulate_timing_detailed(
            gcc_workload,
            _make_predictor("PATH", gcc_workload),
            limit=5000,
        )
        analytic = simulate_timing(
            gcc_workload,
            _make_predictor("PATH", gcc_workload),
            limit=5000,
        )
        assert detailed.ipc == pytest.approx(analytic.ipc, rel=0.15)


class TestDetailedModelProperties:
    def test_utilisation_bounds(self, compress_workload):
        result = simulate_timing_detailed(
            compress_workload,
            PerfectTaskPredictor(compress_workload.trace.head(3000)),
            limit=3000,
        )
        assert 0.0 < result.unit_utilisation <= 1.0
        assert 0.0 < result.mean_window_occupancy <= 4.0

    def test_more_units_raise_occupancy(self, compress_workload):
        def run(n_units):
            return simulate_timing_detailed(
                compress_workload,
                PerfectTaskPredictor(compress_workload.trace.head(3000)),
                config=TimingConfig(n_units=n_units),
                limit=3000,
            )

        one = run(1)
        four = run(4)
        assert four.mean_window_occupancy > one.mean_window_occupancy
        assert four.cycles <= one.cycles

    def test_mispredicts_reduce_occupancy(self, gcc_workload):
        perfect = simulate_timing_detailed(
            gcc_workload,
            PerfectTaskPredictor(gcc_workload.trace.head(4000)),
            limit=4000,
        )
        real = simulate_timing_detailed(
            gcc_workload,
            _make_predictor("Simple", gcc_workload),
            limit=4000,
        )
        assert real.mean_window_occupancy < perfect.mean_window_occupancy

    def test_cycle_ceiling_raises(self, compress_workload):
        with pytest.raises(SimulationError):
            simulate_timing_detailed(
                compress_workload,
                PerfectTaskPredictor(compress_workload.trace.head(1000)),
                limit=1000,
                max_cycles=10,
            )

    def test_instruction_accounting(self, compress_workload):
        limited = compress_workload.trace.head(2000)
        result = simulate_timing_detailed(
            compress_workload,
            PerfectTaskPredictor(limited),
            limit=2000,
        )
        assert result.instructions == limited.total_instructions()
        assert result.tasks == 2000
