"""Tests for the extension experiments and the scoreboard."""

import pytest

from repro.evalx.registry import (
    ALL_IDS,
    EXPERIMENT_IDS,
    EXTENSION_IDS,
    run_experiment,
)


class TestRegistryExtensions:
    def test_extension_ids_registered(self):
        for experiment_id in EXTENSION_IDS:
            assert experiment_id in ALL_IDS

    def test_paper_and_extensions_disjoint(self):
        assert not set(EXPERIMENT_IDS) & set(EXTENSION_IDS)


class TestExtTasksize:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext_tasksize", n_tasks=30_000, quick=True)

    def test_bigger_caps_make_fewer_bigger_tasks(self, result):
        for name, by_cap in result.data.items():
            caps = sorted(by_cap)
            statics = [by_cap[cap]["static_tasks"] for cap in caps]
            assert statics[0] >= statics[-1]
            insns = [by_cap[cap]["insns_per_task"] for cap in caps]
            assert insns[-1] >= insns[0]

    def test_miss_rates_sane(self, result):
        for by_cap in result.data.values():
            for point in by_cap.values():
                assert 0.0 <= point["miss_rate"] < 0.5


class TestExtHybridExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext_hybrid", quick=True)

    def test_tournament_never_much_worse_than_best(self, result):
        series = result.data["series"]
        for i in range(len(result.data["benchmarks"])):
            best = min(series["PATH"][i], series["PER"][i])
            assert series["tournament"][i] <= best + 0.01

    def test_tournament_wins_on_sc(self, result):
        """sc is where the components disagree most: PER good, PATH bad.
        The tournament must at least match PER there."""
        index = result.data["benchmarks"].index("sc")
        series = result.data["series"]
        assert series["tournament"][index] <= series["PATH"][index]


class TestExtConfidenceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext_confidence", quick=True)

    def test_high_confidence_accuracy_high(self, result):
        for row in result.data.values():
            assert row["high_accuracy"] > 0.9

    def test_coverage_meaningful(self, result):
        for row in result.data.values():
            assert 0.1 < row["coverage"] < 1.0


class TestTimingStallAccounting:
    def test_stalls_scale_with_penalty(self, compress_workload):
        from repro.evalx.experiments.table4 import _make_predictor
        from repro.sim.timing import TimingConfig, simulate_timing

        def run(penalty):
            predictor = _make_predictor("Simple", compress_workload)
            return simulate_timing(
                compress_workload,
                predictor,
                config=TimingConfig(task_mispredict_penalty=penalty),
            )

        cheap = run(0)
        costly = run(30)
        assert (
            costly.mispredict_stall_cycles > cheap.mispredict_stall_cycles
        )
        assert 0.0 <= costly.mispredict_stall_fraction < 1.0

    def test_perfect_prediction_has_no_stalls(self, compress_workload):
        from repro.predictors.task_predictor import PerfectTaskPredictor
        from repro.sim.timing import simulate_timing

        result = simulate_timing(
            compress_workload,
            PerfectTaskPredictor(compress_workload.trace),
        )
        assert result.mispredict_stall_cycles == 0
        assert result.mispredict_stall_fraction == 0.0


class TestExtSeeds:
    @pytest.fixture(scope="class")
    def seeds_result(self):
        return run_experiment("ext_seeds", n_tasks=60_000, quick=True)

    def test_orderings_mostly_seed_robust(self, seeds_result):
        holds = sum(
            1
            for by_seed in seeds_result.data.values()
            for point in by_seed.values()
            if point["path"] <= point["global"] + 0.003
        )
        total = sum(
            len(by_seed) for by_seed in seeds_result.data.values()
        )
        assert holds >= int(0.7 * total)

    def test_per_wins_sc_on_every_seed(self, seeds_result):
        for point in seeds_result.data["sc"].values():
            assert point["per"] < point["path"]


class TestCliOptions:
    def test_chart_flag(self, capsys):
        from repro.evalx.__main__ import main as evalx_main

        assert evalx_main(["figure8", "--quick", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "+---" in out  # the chart's x axis

    def test_json_export(self, tmp_path, capsys):
        import json

        from repro.evalx.__main__ import main as evalx_main

        path = tmp_path / "results.jsonl"
        assert evalx_main(
            ["table2", "--quick", "--json", str(path)]
        ) == 0
        record = json.loads(path.read_text().splitlines()[0])
        assert record["experiment"] == "table2"
        assert "gcc" in record["data"]

    def test_extensions_command_listed(self):
        from repro.evalx.registry import ALL_IDS

        assert "ext_seeds" in ALL_IDS
        assert "ext_static" in ALL_IDS


class TestExtGating:
    @pytest.fixture(scope="class")
    def gating_result(self):
        return run_experiment("ext_gating", n_tasks=40_000, quick=True)

    def test_gating_loses_with_cheap_recovery(self, gating_result):
        for name, by_penalty in gating_result.data.items():
            cheap = by_penalty["penalty3"]
            gated = [v for k, v in cheap.items() if k.startswith("gated")]
            assert min(gated) <= cheap["ungated"] + 0.02

    def test_gating_wins_with_expensive_recovery(self, gating_result):
        wins = 0
        for name, by_penalty in gating_result.data.items():
            costly = by_penalty["penalty40"]
            gated = [v for k, v in costly.items() if k.startswith("gated")]
            if max(gated) > costly["ungated"]:
                wins += 1
        assert wins >= 4  # the crossover holds on nearly every benchmark

    def test_gated_timing_consistent(self, compress_workload):
        """Gating must never corrupt the timing recurrences: cycles stay
        positive and IPC bounded by issue capacity."""
        from repro.predictors.confidence import (
            ResettingConfidenceEstimator,
        )
        from repro.predictors.folding import DolcSpec
        from repro.sim.timing import simulate_timing
        from repro.evalx.experiments.table4 import _make_predictor

        result = simulate_timing(
            compress_workload,
            _make_predictor("PATH", compress_workload),
            confidence_gate=ResettingConfidenceEstimator(
                DolcSpec.parse("4-5-6-7(2)"), threshold=4
            ),
        )
        assert result.cycles > 0
        assert 0.0 < result.ipc <= 8.0
