"""Tests for speculative-history prediction and the relaxed simulator."""

import pytest

from repro.errors import PredictorConfigError
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.speculative import SpeculativePathPredictor
from repro.sim.functional import simulate_exit_prediction
from repro.sim.relaxed import simulate_speculative_exit_prediction

_SPEC = DolcSpec.parse("4-5-6-7(2)")


class TestSpeculativePathPredictor:
    def test_policy_validation(self):
        with pytest.raises(PredictorConfigError):
            SpeculativePathPredictor(_SPEC, repair="magic")
        with pytest.raises(PredictorConfigError):
            SpeculativePathPredictor(_SPEC, max_in_flight=0)

    def test_predict_resolve_lifecycle(self):
        predictor = SpeculativePathPredictor(_SPEC)
        exit_index = predictor.predict(0x100, 2)
        assert 0 <= exit_index < 2
        predictor.resolve(0x100, 2, actual_exit=1, was_wrong_path=False)
        assert predictor.states_touched() == 1

    def test_single_exit_task_trivial(self):
        predictor = SpeculativePathPredictor(_SPEC)
        assert predictor.predict(0x100, 1) == 0
        predictor.resolve(0x100, 1, 0, was_wrong_path=False)
        assert predictor.states_touched() == 0

    def test_perfect_repair_removes_pollution(self):
        predictor = SpeculativePathPredictor(_SPEC, repair="perfect")
        predictor.predict(0x100, 2)
        predictor.resolve(0x100, 2, 0, was_wrong_path=False)
        predictor.predict(0x200, 2)
        # Wrong-path pollution after the 0x200 prediction:
        predictor.predict_wrong_path(0xDEAD0, 2)
        predictor.predict_wrong_path(0xBEEF0, 2)
        predictor.resolve(0x200, 2, 1, was_wrong_path=True)
        # Path must now be exactly [0x100, 0x200]: checkpoint + the task.
        assert list(predictor._path) == [0x100, 0x200]

    def test_squash_repair_clears_history(self):
        predictor = SpeculativePathPredictor(_SPEC, repair="squash")
        predictor.predict(0x100, 2)
        predictor.predict_wrong_path(0xDEAD0, 2)
        predictor.resolve(0x100, 2, 1, was_wrong_path=True)
        assert list(predictor._path) == []

    def test_no_repair_keeps_pollution(self):
        predictor = SpeculativePathPredictor(_SPEC, repair="none")
        predictor.predict(0x100, 2)
        predictor.predict_wrong_path(0xDEAD0, 2)
        predictor.resolve(0x100, 2, 1, was_wrong_path=True)
        assert 0xDEAD0 in list(predictor._path)

    def test_wrong_path_takes_no_checkpoint(self):
        predictor = SpeculativePathPredictor(_SPEC)
        predictor.predict_wrong_path(0x100, 2)
        assert len(predictor._checkpoints) == 0


class TestRelaxedSimulation:
    def test_perfect_repair_matches_idealised_simulator(
        self, compress_workload
    ):
        """With perfect repair, speculative simulation must reproduce the
        paper-idealised miss rate exactly — the two models are equivalent
        when repair is lossless."""
        idealised = simulate_exit_prediction(
            compress_workload, PathExitPredictor(_SPEC)
        )
        speculative = simulate_speculative_exit_prediction(
            compress_workload,
            SpeculativePathPredictor(_SPEC, repair="perfect"),
        )
        assert speculative.misses == idealised.misses
        assert speculative.trials == idealised.trials

    def test_pollution_hurts_without_repair(self, gcc_workload):
        def run(policy):
            return simulate_speculative_exit_prediction(
                gcc_workload,
                SpeculativePathPredictor(_SPEC, repair=policy),
            )

        perfect = run("perfect")
        none = run("none")
        assert none.misses >= perfect.misses

    def test_wrong_path_predictions_counted(self, gcc_workload):
        stats = simulate_speculative_exit_prediction(
            gcc_workload,
            SpeculativePathPredictor(_SPEC, repair="perfect"),
            wrong_path_depth=4,
        )
        assert stats.wrong_path_predictions > 0
        assert stats.miss_rate > 0.0

    def test_zero_wrong_path_depth(self, compress_workload):
        stats = simulate_speculative_exit_prediction(
            compress_workload,
            SpeculativePathPredictor(_SPEC, repair="none"),
            wrong_path_depth=0,
        )
        assert stats.wrong_path_predictions == 0


class TestExtensionExperiments:
    def test_ext_repair_runs_and_orders(self):
        from repro.evalx.registry import run_experiment

        result = run_experiment("ext_repair", quick=True)
        series = result.data["series"]
        for i in range(len(result.data["benchmarks"])):
            assert (
                series["speculative/perfect"][i]
                == pytest.approx(series["idealised (paper §3.1)"][i])
            )
            assert (
                series["speculative/none"][i]
                >= series["speculative/perfect"][i] - 0.001
            )

    def test_ext_ras_deep_stack_nearly_perfect(self):
        from repro.evalx.registry import run_experiment

        result = run_experiment("ext_ras", quick=True)
        for name, rates in result.data["series"].items():
            assert rates[-1] <= rates[0] + 1e-9
            # A deep RAS is nearly perfect (paper §4.2). compress has so
            # few returns that its floor is its driver re-entries.
            if name in ("gcc", "xlisp", "espresso"):
                assert rates[-1] < 0.05

    def test_ext_cttb_monotone_capacity(self):
        from repro.evalx.registry import run_experiment

        result = run_experiment("ext_cttb", quick=True)
        for rates in result.data["series"].values():
            assert rates[-1] <= rates[0] + 0.02
