"""Tests for the runtime behaviour models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.synth.behavior import (
    BehaviorContext,
    BiasedChoice,
    ContextChoice,
    DepthGuardChoice,
    FixedChoice,
    HistoryParityChoice,
    LoopBehavior,
    PathCorrelatedChoice,
    PeriodicChoice,
    PhaseChoice,
    TaskWindowChoice,
)
from repro.utils.rng import DeterministicRng


def make_ctx(seed=0, phase_period=1000):
    return BehaviorContext(
        rng=DeterministicRng(seed), phase_period=phase_period
    )


class TestBehaviorContext:
    def test_phase_advances_with_steps(self):
        ctx = make_ctx(phase_period=3)
        for _ in range(3):
            ctx.note_decision()
        assert ctx.phase == 1

    def test_branch_history_shifts(self):
        ctx = make_ctx()
        ctx.note_branch_outcome(True)
        ctx.note_branch_outcome(False)
        ctx.note_branch_outcome(True)
        assert ctx.recent_outcomes & 0b111 == 0b101

    def test_task_window_bounded(self):
        ctx = make_ctx()
        for addr in range(100):
            ctx.note_task(addr)
        assert len(ctx.task_window) == 8

    def test_window_hash_depends_on_recent_tasks(self):
        ctx = make_ctx()
        ctx.note_task(0x100)
        h1 = ctx.window_hash(2)
        ctx.note_task(0x200)
        h2 = ctx.window_hash(2)
        assert h1 != h2

    def test_window_hash_ignores_older_than_k(self):
        a = make_ctx()
        b = make_ctx()
        for addr in (1, 2, 3):
            a.note_task(addr)
        for addr in (9, 2, 3):
            b.note_task(addr)
        assert a.window_hash(2) == b.window_hash(2)
        assert a.window_hash(3) != b.window_hash(3)


class TestFixedChoice:
    def test_always_same(self):
        ctx = make_ctx()
        behavior = FixedChoice(1)
        assert all(behavior.choose(ctx, "k") == 1 for _ in range(5))

    def test_rejects_negative(self):
        with pytest.raises(WorkloadError):
            FixedChoice(-1)


class TestBiasedChoice:
    def test_bias_respected_statistically(self):
        ctx = make_ctx(seed=5)
        behavior = BiasedChoice(0.9)
        outcomes = [behavior.choose(ctx, "k") for _ in range(2000)]
        assert 0.85 < outcomes.count(0) / len(outcomes) < 0.95

    def test_multiway_spread(self):
        ctx = make_ctx(seed=6)
        behavior = BiasedChoice(0.5, n_choices=4)
        seen = {behavior.choose(ctx, "k") for _ in range(500)}
        assert seen == {0, 1, 2, 3}

    def test_invalid_bias(self):
        with pytest.raises(WorkloadError):
            BiasedChoice(1.5)

    def test_needs_two_choices(self):
        with pytest.raises(WorkloadError):
            BiasedChoice(0.5, n_choices=1)


class TestLoopBehavior:
    def test_iterates_exactly_trips_times(self):
        ctx = make_ctx()
        behavior = LoopBehavior((3,))
        outcomes = [behavior.choose(ctx, "loop") for _ in range(3)]
        assert outcomes == [0, 0, 1]  # 2 body iterations, then exit

    def test_rearms_after_exit(self):
        ctx = make_ctx()
        behavior = LoopBehavior((2,))
        first = [behavior.choose(ctx, "loop") for _ in range(2)]
        second = [behavior.choose(ctx, "loop") for _ in range(2)]
        assert first == second == [0, 1]

    def test_trip_selection_depends_on_context(self):
        behavior = LoopBehavior((2, 5))
        trips_a = _activation_length(behavior, make_ctx_with_hash(0))
        trips_b = _activation_length(behavior, make_ctx_with_hash(1))
        assert {trips_a, trips_b} == {2, 5}

    def test_rejects_bad_trips(self):
        with pytest.raises(WorkloadError):
            LoopBehavior(())
        with pytest.raises(WorkloadError):
            LoopBehavior((0,))


def make_ctx_with_hash(value):
    ctx = make_ctx()
    ctx.context_hash = value
    return ctx


def _activation_length(behavior, ctx):
    count = 0
    while True:
        count += 1
        if behavior.choose(ctx, "loop") == 1:
            return count


class TestPeriodicChoice:
    def test_cycles_pattern(self):
        ctx = make_ctx()
        behavior = PeriodicChoice((0, 1, 1))
        outcomes = [behavior.choose(ctx, "p") for _ in range(6)]
        assert outcomes == [0, 1, 1, 0, 1, 1]

    def test_per_site_counters_independent(self):
        ctx = make_ctx()
        behavior = PeriodicChoice((0, 1))
        assert behavior.choose(ctx, "a") == 0
        assert behavior.choose(ctx, "b") == 0  # b has its own phase

    def test_rejects_empty_pattern(self):
        with pytest.raises(WorkloadError):
            PeriodicChoice(())


class TestHistoryParityChoice:
    def test_deterministic_without_noise(self):
        behavior = HistoryParityChoice(0b11)
        ctx = make_ctx()
        ctx.recent_outcomes = 0b10
        assert behavior.choose(ctx, "h") == 1  # parity of '10' is 1
        ctx.recent_outcomes = 0b11
        assert behavior.choose(ctx, "h") == 0

    def test_mask_validation(self):
        with pytest.raises(WorkloadError):
            HistoryParityChoice(0)


class TestPathCorrelatedChoice:
    def test_deterministic_given_window(self):
        behavior = PathCorrelatedChoice(window=3)
        a = make_ctx()
        b = make_ctx(seed=99)  # different rng must not matter without noise
        for addr in (0x10, 0x20, 0x30):
            a.note_task(addr)
            b.note_task(addr)
        assert behavior.choose(a, "s") == behavior.choose(b, "s")

    def test_different_paths_can_differ(self):
        behavior = PathCorrelatedChoice(window=2)
        outcomes = set()
        for variant in range(16):
            ctx = make_ctx()
            ctx.note_task(variant * 4)
            ctx.note_task(0x40)
            outcomes.add(behavior.choose(ctx, "s"))
        assert outcomes == {0, 1}

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PathCorrelatedChoice(0)


class TestTaskWindowChoice:
    def test_in_range(self):
        behavior = TaskWindowChoice(4, window=2)
        for variant in range(20):
            ctx = make_ctx()
            ctx.note_task(variant * 8)
            assert 0 <= behavior.choose(ctx, "sw") < 4

    def test_deterministic_per_path(self):
        behavior = TaskWindowChoice(5, window=2)
        a, b = make_ctx(), make_ctx(seed=3)
        for addr in (0x8, 0x18):
            a.note_task(addr)
            b.note_task(addr)
        assert behavior.choose(a, "sw") == behavior.choose(b, "sw")

    def test_needs_two_choices(self):
        with pytest.raises(WorkloadError):
            TaskWindowChoice(1, window=2)


class TestPhaseChoice:
    def test_constant_within_phase(self):
        behavior = PhaseChoice(4)
        ctx = make_ctx(phase_period=10_000)
        outcomes = {behavior.choose(ctx, "ph") for _ in range(50)}
        assert len(outcomes) == 1

    def test_changes_across_phases(self):
        behavior = PhaseChoice(7)
        seen = set()
        ctx = make_ctx(phase_period=1)
        for _ in range(30):
            seen.add(behavior.choose(ctx, "ph"))
        assert len(seen) > 1


class TestContextChoice:
    def test_deterministic_per_context(self):
        behavior = ContextChoice(3)
        a, b = make_ctx(), make_ctx(seed=9)
        a.context_hash = b.context_hash = 0xABC
        assert behavior.choose(a, "c") == behavior.choose(b, "c")


class TestDepthGuardChoice:
    def test_stops_at_max_depth(self):
        behavior = DepthGuardChoice(max_depth=3, noise=0.0)
        ctx = make_ctx()
        ctx.call_depth = 3
        assert behavior.choose(ctx, "g") == 1

    def test_can_recurse_below_limit(self):
        behavior = DepthGuardChoice(max_depth=5, p_continue=1.0, noise=0.0)
        ctx = make_ctx()
        ctx.call_depth = 0
        assert behavior.choose(ctx, "g") == 0

    @given(st.integers(min_value=0, max_value=20))
    def test_never_recurses_at_or_beyond_limit(self, depth):
        behavior = DepthGuardChoice(max_depth=4, p_continue=1.0, noise=1.0)
        ctx = make_ctx()
        ctx.call_depth = depth
        outcome = behavior.choose(ctx, "g")
        if depth >= 4:
            assert outcome == 1
