"""Bit-identity of the vectorized simulation paths vs their scalar twins.

The PR 6 performance contract: every ``vectorize=True`` path — the
timing model's max-plus scan, the realistic predictors' batched
columns, the speculative-history replay, the detailed model's
event-compressed advance — must produce results *equal* to the stepped
scalar reference, not merely close. These tests sweep the full scheme
grid (every realistic Table 4 predictor) over all five synthetic
workload profiles, vary the machine configuration (ring size,
penalties, forwarding), and run one checkpoint-resumed sweep to show
records served from a checkpoint store match a fresh vectorized run.

(`repro.sim.timing.scan` points here as the scan's equivalence proof.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evalx.checkpoint import CheckpointStore
from repro.evalx.experiments.common import BENCHMARKS
from repro.evalx.experiments.table4 import SCHEMES, _make_predictor
from repro.evalx.registry import run_experiment
from repro.predictors.folding import DolcSpec
from repro.predictors.speculative import (
    REPAIR_POLICIES,
    SpeculativePathPredictor,
)
from repro.sim.relaxed import simulate_speculative_exit_prediction
from repro.sim.timing import TimingConfig, simulate_timing
from repro.sim.timing.detailed import simulate_timing_detailed
from repro.synth.workloads import load_workload
from repro.utils.memo import (
    _PRUNE_THRESHOLD,
    DerivedColumnCache,
    int64_column,
)

_TASKS = 4_000

_CONFIGS = {
    "paper": TimingConfig(),
    "wide-ring": TimingConfig(n_units=8, commit_interval=2),
    "serial-forwarding": TimingConfig(
        forward_fraction=1.0, task_mispredict_penalty=12
    ),
    "long-tasks": TimingConfig(task_startup_cycles=16, issue_width=2),
}


class TestTimingBitIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_every_scheme_every_profile(self, name, scheme):
        workload = load_workload(name, n_tasks=_TASKS)
        stepped = simulate_timing(
            workload, _make_predictor(scheme, workload), vectorize=False
        )
        batched = simulate_timing(
            workload, _make_predictor(scheme, workload), vectorize=True
        )
        assert batched == stepped

    @pytest.mark.parametrize("config_name", sorted(_CONFIGS))
    @pytest.mark.parametrize("scheme", ("PATH", "GLOBAL"))
    def test_machine_configurations(self, config_name, scheme):
        workload = load_workload("gcc", n_tasks=_TASKS)
        config = _CONFIGS[config_name]
        stepped = simulate_timing(
            workload, _make_predictor(scheme, workload),
            config=config, vectorize=False,
        )
        batched = simulate_timing(
            workload, _make_predictor(scheme, workload),
            config=config, vectorize=True,
        )
        assert batched == stepped


class TestDetailedEventCompression:
    @pytest.mark.parametrize("config_name", sorted(_CONFIGS))
    @pytest.mark.parametrize("scheme", ("Simple", "PATH", "Perfect"))
    def test_event_skips_are_exact(self, config_name, scheme):
        workload = load_workload("xlisp", n_tasks=1_500)
        config = _CONFIGS[config_name]
        stepped = simulate_timing_detailed(
            workload, _make_predictor(scheme, workload),
            config=config, vectorize=False,
        )
        compressed = simulate_timing_detailed(
            workload, _make_predictor(scheme, workload),
            config=config, vectorize=True,
        )
        assert compressed == stepped


class TestSpeculativeReplay:
    @pytest.mark.parametrize(
        "spec", ("7-5-7-8(3)", "4-4-6-8(2)", "0-0-0-9(1)", "2-3-5-6(2)")
    )
    @pytest.mark.parametrize("depth", (0, 1, 4, 7))
    def test_perfect_repair_matches_stepped_loop(self, spec, depth):
        workload = load_workload("compress", n_tasks=_TASKS)
        parsed = DolcSpec.parse(spec)
        stepped = simulate_speculative_exit_prediction(
            workload, SpeculativePathPredictor(parsed),
            wrong_path_depth=depth, vectorize=False,
        )
        batched = simulate_speculative_exit_prediction(
            workload, SpeculativePathPredictor(parsed),
            wrong_path_depth=depth, vectorize=True,
        )
        assert batched == stepped

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_perfect_repair_every_profile(self, name):
        workload = load_workload(name, n_tasks=_TASKS)
        parsed = DolcSpec.parse("7-5-7-8(3)")
        stepped = simulate_speculative_exit_prediction(
            workload, SpeculativePathPredictor(parsed),
            vectorize=False,
        )
        batched = simulate_speculative_exit_prediction(
            workload, SpeculativePathPredictor(parsed),
            vectorize=True,
        )
        assert batched == stepped

    @pytest.mark.parametrize("repair", REPAIR_POLICIES)
    def test_other_repair_policies_fall_back(self, repair):
        """vectorize=True must be safe for every policy (scalar fallback)."""
        workload = load_workload("sc", n_tasks=1_000)
        parsed = DolcSpec.parse("4-4-6-8(2)")
        stepped = simulate_speculative_exit_prediction(
            workload, SpeculativePathPredictor(parsed, repair=repair),
            vectorize=False,
        )
        batched = simulate_speculative_exit_prediction(
            workload, SpeculativePathPredictor(parsed, repair=repair),
            vectorize=True,
        )
        assert batched == stepped


class TestCheckpointResumedSweep:
    def test_resumed_sweep_matches_fresh_run(self, tmp_path):
        """Records served from a checkpoint store equal a fresh sweep."""
        kwargs = dict(quick=True, n_tasks=2_000)
        fresh = run_experiment("table4", **kwargs)
        first = run_experiment(
            "table4", checkpoint=CheckpointStore(tmp_path), **kwargs
        )
        resumed = run_experiment(
            "table4",
            checkpoint=CheckpointStore(tmp_path, resume=True),
            **kwargs,
        )
        assert first.data == fresh.data
        assert resumed.data == fresh.data
        # The resume really was served from disk, not recomputed.
        assert list(tmp_path.glob("*.ckpt.json"))


class TestDerivedColumnCache:
    def test_same_anchor_hits_and_new_anchor_rebuilds(self):
        cache = DerivedColumnCache()
        anchor = np.arange(8)
        builds = []

        def build():
            builds.append(None)
            return anchor * 2

        first = cache.get((anchor,), "x2", build)
        second = cache.get((anchor,), "x2", build)
        assert first is second
        assert len(builds) == 1
        other = np.arange(8)
        cache.get((other,), "x2", build)
        assert len(builds) == 2

    def test_tag_distinguishes_parameterisations(self):
        cache = DerivedColumnCache()
        anchor = np.arange(4)
        a = cache.get((anchor,), ("depth", 3), lambda: "d3")
        b = cache.get((anchor,), ("depth", 7), lambda: "d7")
        assert (a, b) == ("d3", "d7")

    def test_dead_anchor_is_not_served_to_an_aliased_id(self):
        cache = DerivedColumnCache()
        anchor = np.arange(16)
        cache.get((anchor,), "tag", lambda: "old")
        del anchor
        fresh = np.arange(16)
        # Even if id() were recycled, the weakref revalidation forces a
        # rebuild rather than serving the dead anchor's value.
        assert cache.get((fresh,), "tag", lambda: "new") == "new"

    def test_unweakrefable_anchor_bypasses_cache(self):
        cache = DerivedColumnCache()
        calls = []
        for _ in range(2):
            cache.get((42,), "t", lambda: calls.append(None))
        assert len(calls) == 2

    def test_live_entries_are_bounded_lru(self):
        cache = DerivedColumnCache()
        anchors = [np.empty(1) for _ in range(_PRUNE_THRESHOLD * 3)]
        for i, anchor in enumerate(anchors):
            cache.get((anchor,), i, lambda i=i: i)
        # Live anchors alone must not grow the table past the bound.
        assert len(cache._entries) == _PRUNE_THRESHOLD
        builds = []
        # The newest entry is still cached ...
        cache.get(
            (anchors[-1],),
            len(anchors) - 1,
            lambda: builds.append("rebuilt"),
        )
        assert builds == []
        # ... and the oldest was evicted, so it rebuilds.
        cache.get((anchors[0],), 0, lambda: builds.append("rebuilt"))
        assert builds == ["rebuilt"]

    def test_hit_refreshes_recency(self):
        cache = DerivedColumnCache()
        keep = np.empty(1)
        cache.get((keep,), "keep", lambda: "kept")
        fillers = []
        for i in range(_PRUNE_THRESHOLD * 2):
            filler = np.empty(1)
            fillers.append(filler)
            cache.get((filler,), i, lambda i=i: i)
            # Touch the sentinel so every eviction takes a filler.
            cache.get((keep,), "keep", lambda: "rebuilt")
        assert cache.get((keep,), "keep", lambda: "rebuilt") == "kept"

    def test_insert_cost_stays_flat_with_live_anchors(self):
        """Regression: once >= _PRUNE_THRESHOLD *live* entries existed,
        every insert rescanned the whole (unbounded) table — O(n^2)
        across a sweep. Eviction must keep inserts O(1)."""
        import time

        cache = DerivedColumnCache()
        anchors = [np.empty(0) for _ in range(20_000)]
        started = time.perf_counter()
        for i, anchor in enumerate(anchors):
            cache.get((anchor,), i, lambda: None)
        elapsed = time.perf_counter() - started
        assert len(cache._entries) == _PRUNE_THRESHOLD
        # The quadratic rescan took tens of seconds here; the LRU pop
        # takes well under one even on a loaded CI box.
        assert elapsed < 5.0

    def test_int64_column_is_canonical_per_source(self):
        narrow = np.arange(10, dtype=np.uint16)
        wide_a = int64_column(narrow)
        wide_b = int64_column(narrow)
        assert wide_a is wide_b
        assert wide_a.dtype == np.int64
        already = np.arange(10, dtype=np.int64)
        assert int64_column(already) is already
