"""Property-based tests on predictor data structures.

Hypothesis strategies generate valid D-O-L-C(F) specifications and outcome
streams; the tests check invariants that must hold for every instance,
plus reference-model equivalence for the LEH automaton.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.predictors.automata import LastExitHysteresis
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec

_ADDRESSES = st.integers(min_value=0, max_value=(1 << 32) - 4).map(
    lambda a: a & ~0x3
)


@st.composite
def dolc_specs(draw):
    """Any valid spec with a final index of at most 16 bits."""
    depth = draw(st.integers(min_value=0, max_value=8))
    folds = draw(st.integers(min_value=1, max_value=3))
    index_bits = draw(st.integers(min_value=4, max_value=16))
    total = index_bits * folds
    if depth == 0:
        return DolcSpec(
            depth=0, older_bits=0, last_bits=0,
            current_bits=total, folds=folds,
        )
    if depth == 1:
        last = draw(st.integers(min_value=1, max_value=total - 1))
        return DolcSpec(
            depth=1, older_bits=0, last_bits=last,
            current_bits=total - last, folds=folds,
        )
    # depth >= 2: need (depth-1)*older + last + current == total with
    # older >= 0, last >= 1, current >= 1.
    max_older = (total - 2) // (depth - 1)
    older = draw(st.integers(min_value=0, max_value=max(0, max_older)))
    remaining = total - (depth - 1) * older
    last = draw(st.integers(min_value=1, max_value=remaining - 1))
    return DolcSpec(
        depth=depth, older_bits=older, last_bits=last,
        current_bits=remaining - last, folds=folds,
    )


class TestDolcSpecProperties:
    @settings(max_examples=80)
    @given(dolc_specs(), _ADDRESSES, st.lists(_ADDRESSES, max_size=12))
    def test_index_always_in_range(self, spec, addr, path):
        assert 0 <= spec.index(addr, path) < spec.table_entries

    @settings(max_examples=50)
    @given(dolc_specs())
    def test_parse_round_trips_str(self, spec):
        assert DolcSpec.parse(str(spec)) == spec

    @settings(max_examples=50)
    @given(dolc_specs(), _ADDRESSES, st.lists(_ADDRESSES, max_size=12))
    def test_index_uses_only_last_depth_tasks(self, spec, addr, path):
        prefixed = [0xDEAD_BEE0, 0xFEED_F000] + path
        if spec.depth <= len(path):
            assert spec.index(addr, path) == spec.index(addr, prefixed)

    @settings(max_examples=50)
    @given(dolc_specs())
    def test_intermediate_width_formula(self, spec):
        if spec.depth == 0:
            expected = spec.current_bits
        else:
            expected = (
                (spec.depth - 1) * spec.older_bits
                + spec.last_bits
                + spec.current_bits
            )
        assert spec.intermediate_bits == expected
        assert spec.intermediate_bits % spec.folds == 0


def _leh_reference(outcomes, bits):
    """Pure-python reference for the LEH automaton's final state."""
    exit_value, confidence = 0, 0
    maximum = (1 << bits) - 1
    for actual in outcomes:
        if actual == exit_value:
            confidence = min(maximum, confidence + 1)
        elif confidence > 0:
            confidence -= 1
        else:
            exit_value, confidence = actual, 0
    return exit_value


class TestLehReferenceModel:
    @settings(max_examples=100)
    @given(
        st.lists(st.integers(min_value=0, max_value=3), max_size=60),
        st.integers(min_value=1, max_value=3),
    )
    def test_matches_reference(self, outcomes, bits):
        automaton = LastExitHysteresis(bits)
        for actual in outcomes:
            automaton.update(actual)
        assert automaton.predict() == _leh_reference(outcomes, bits)


class TestPathPredictorProperties:
    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(
                _ADDRESSES,
                st.integers(min_value=1, max_value=4),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_predictions_always_legal(self, steps):
        predictor = PathExitPredictor(DolcSpec.parse("3-6-8-8(2)"))
        for addr, n_exits in steps:
            prediction = predictor.predict(addr, n_exits)
            assert 0 <= prediction < n_exits
            # Feed back an arbitrary legal outcome.
            predictor.update(addr, n_exits, (addr >> 2) % n_exits)

    @settings(max_examples=30)
    @given(st.lists(_ADDRESSES, min_size=1, max_size=40))
    def test_states_bounded_by_table(self, addrs):
        predictor = PathExitPredictor(DolcSpec.parse("2-3-3-5(1)"))
        for addr in addrs:
            predictor.predict(addr, 3)
            predictor.update(addr, 3, 1)
        assert predictor.states_touched() <= predictor.spec.table_entries