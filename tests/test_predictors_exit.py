"""Tests for real and ideal exit predictors."""

import pytest

from repro.errors import PredictorConfigError
from repro.predictors.exit_predictors import (
    GlobalExitPredictor,
    PathExitPredictor,
    PerTaskExitPredictor,
    SimpleExitPredictor,
)
from repro.predictors.folding import DolcSpec
from repro.predictors.ideal import (
    IdealGlobalPredictor,
    IdealPathPredictor,
    IdealPerTaskPredictor,
)
from repro.predictors.pht import PatternHistoryTable
from repro.predictors.automata import LastExitHysteresis


def drive(predictor, sequence):
    """Feed (addr, n_exits, actual_exit) steps; return predictions made."""
    predictions = []
    for addr, n_exits, actual in sequence:
        predictions.append(predictor.predict(addr, n_exits))
        predictor.update(addr, n_exits, actual)
    return predictions


class TestPatternHistoryTable:
    def test_lazy_entries(self):
        pht = PatternHistoryTable(4, LastExitHysteresis)
        assert pht.states_touched() == 0
        pht.entry(3).update(1)
        assert pht.states_touched() == 1

    def test_index_bounds(self):
        pht = PatternHistoryTable(4, LastExitHysteresis)
        with pytest.raises(PredictorConfigError):
            pht.entry(16)
        with pytest.raises(PredictorConfigError):
            pht.entry(-1)

    def test_storage_accounts_full_table(self):
        pht = PatternHistoryTable(14, lambda: LastExitHysteresis(2))
        assert pht.storage_bits() == (1 << 14) * 4  # the paper's 8KB PHT


class TestSingleExitOptimisation:
    """§6.1: one-exit tasks predicted without touching the PHT."""

    def test_no_pht_updates_for_single_exit(self):
        predictor = PathExitPredictor(DolcSpec.parse("2-4-5-5(1)"))
        drive(predictor, [(0x100, 1, 0)] * 50)
        assert predictor.states_touched() == 0

    def test_ablation_flag_enables_updates(self):
        predictor = PathExitPredictor(
            DolcSpec.parse("2-4-5-5(1)"), update_on_single_exit=True
        )
        drive(predictor, [(0x100, 1, 0)] * 5)
        assert predictor.states_touched() > 0

    def test_single_exit_always_predicts_zero(self):
        predictor = PathExitPredictor(DolcSpec.parse("2-4-5-5(1)"))
        assert predictor.predict(0x100, 1) == 0

    def test_path_register_still_advances(self):
        # Two runs that differ only in single-exit tasks must index the PHT
        # differently afterwards: single-exit tasks are still on the path.
        spec = DolcSpec.parse("2-4-5-5(1)")
        a = PathExitPredictor(spec)
        b = PathExitPredictor(spec)
        drive(a, [(0x104, 1, 0), (0x200, 2, 1)])
        drive(b, [(0x108, 1, 0), (0x200, 2, 1)])
        # Train 'a' hard on exit 1; if b aliased to the same entry its
        # prediction would follow, but the paths differ.
        index_a = a.spec.index(0x300, [0x104, 0x200])
        index_b = b.spec.index(0x300, [0x108, 0x200])
        assert index_a != index_b


class TestPathExitPredictor:
    def test_learns_path_dependent_exits(self):
        """The same task takes exit 0 after path A and exit 1 after path B;
        a depth-2 path predictor must learn both."""
        spec = DolcSpec.parse("2-4-5-5(1)")
        predictor = PathExitPredictor(spec)
        pattern = [
            (0x104, 1, 0), (0x208, 1, 0), (0x40C, 2, 0),  # path A -> exit 0
            (0x104, 1, 0), (0x310, 1, 0), (0x40C, 2, 1),  # path B -> exit 1
        ]
        for _ in range(20):
            drive(predictor, pattern)
        predictions = drive(predictor, pattern)
        assert predictions[2] == 0
        assert predictions[5] == 1

    def test_depth0_cannot_learn_path_dependence(self):
        predictor = SimpleExitPredictor(index_bits=10)
        pattern = [
            (0x100, 1, 0), (0x200, 1, 0), (0x400, 2, 0),
            (0x100, 1, 0), (0x300, 1, 0), (0x400, 2, 1),
        ]
        for _ in range(20):
            drive(predictor, pattern)
        predictions = drive(predictor, pattern)
        # With one automaton for task 0x400, it cannot be right both times.
        assert not (predictions[2] == 0 and predictions[5] == 1)

    def test_prediction_clamped_to_n_exits(self):
        predictor = PathExitPredictor(DolcSpec.parse("0-0-0-6(1)"))
        drive(predictor, [(0x100, 4, 3)] * 5)
        # Same index, but a 2-exit task must not see prediction 3.
        assert predictor.predict(0x100, 2) <= 1

    def test_storage_is_8kb_for_14_bit_leh2(self):
        predictor = PathExitPredictor(DolcSpec.parse("6-5-8-9(3)"))
        assert predictor.storage_bits() == 8 * 1024 * 8


class TestGlobalExitPredictor:
    def test_learns_global_history_correlation(self):
        predictor = GlobalExitPredictor(depth=2, index_bits=10)
        # Task 0x400's exit equals the exit taken two steps earlier.
        pattern = [
            (0x100, 2, 1), (0x200, 2, 0), (0x400, 2, 1),
            (0x100, 2, 0), (0x200, 2, 0), (0x400, 2, 0),
        ]
        for _ in range(30):
            drive(predictor, pattern)
        predictions = drive(predictor, pattern)
        assert predictions[2] == 1
        assert predictions[5] == 0

    def test_depth_validation(self):
        with pytest.raises(PredictorConfigError):
            GlobalExitPredictor(depth=-1)


class TestPerTaskExitPredictor:
    def test_learns_per_task_period(self):
        predictor = PerTaskExitPredictor(depth=3, index_bits=10)
        # Task 0x100 cycles exits 0,0,1; task 0x200 is interleaved noise.
        pattern = [
            (0x100, 2, 0), (0x200, 2, 1),
            (0x100, 2, 0), (0x200, 2, 1),
            (0x100, 2, 1), (0x200, 2, 1),
        ]
        for _ in range(40):
            drive(predictor, pattern)
        predictions = drive(predictor, pattern)
        assert [predictions[0], predictions[2], predictions[4]] == [0, 0, 1]

    def test_storage_includes_hrt(self):
        predictor = PerTaskExitPredictor(
            depth=7, index_bits=10, hrt_index_bits=4
        )
        assert predictor.storage_bits() == (1 << 10) * 4 + (1 << 4) * 14


class TestIdealPredictors:
    def test_depth0_schemes_identical(self):
        steps = [
            (0x100, 2, i % 2) for i in range(40)
        ] + [(0x200, 3, 2)] * 10
        results = []
        for cls in (
            IdealGlobalPredictor, IdealPathPredictor, IdealPerTaskPredictor
        ):
            results.append(drive(cls(0), list(steps)))
        assert results[0] == results[1] == results[2]

    def test_ideal_path_learns_exact_function_of_path(self):
        predictor = IdealPathPredictor(2)
        pattern = [
            (0x100, 1, 0), (0x200, 1, 0), (0x400, 2, 0),
            (0x100, 1, 0), (0x300, 1, 0), (0x400, 2, 1),
        ]
        for _ in range(3):
            drive(predictor, pattern)
        predictions = drive(predictor, pattern)
        assert predictions[2] == 0
        assert predictions[5] == 1

    def test_ideal_per_task_learns_cycles(self):
        predictor = IdealPerTaskPredictor(3)
        pattern = [(0x100, 2, e) for e in (0, 0, 1)]
        for _ in range(10):
            drive(predictor, pattern)
        predictions = drive(predictor, pattern)
        assert predictions == [0, 0, 1]

    def test_states_touched_grows_with_depth(self, compress_workload):
        from repro.sim.functional import simulate_exit_prediction

        shallow = simulate_exit_prediction(
            compress_workload, IdealPathPredictor(1)
        ).states_touched
        deep = simulate_exit_prediction(
            compress_workload, IdealPathPredictor(6)
        ).states_touched
        assert deep > shallow

    def test_negative_depth_rejected(self):
        with pytest.raises(PredictorConfigError):
            IdealPathPredictor(-1)
