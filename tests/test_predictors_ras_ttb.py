"""Tests for the return address stack and task target buffers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PredictorConfigError
from repro.predictors.folding import DolcSpec
from repro.predictors.ras import ReturnAddressStack
from repro.predictors.ttb import (
    CorrelatedTaskTargetBuffer,
    IdealCorrelatedTargetBuffer,
    TaskTargetBuffer,
)


class TestReturnAddressStack:
    def test_lifo_order(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x10)
        ras.push(0x20)
        assert ras.pop() == 0x20
        assert ras.pop() == 0x10

    def test_pop_empty_returns_none(self):
        assert ReturnAddressStack(depth=4).pop() is None

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x30)
        assert ras.peek() == 0x30
        assert ras.peek() == 0x30
        assert len(ras) == 1

    def test_overflow_overwrites_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_clear(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(1)
        ras.clear()
        assert len(ras) == 0
        assert ras.pop() is None

    def test_depth_validation(self):
        with pytest.raises(PredictorConfigError):
            ReturnAddressStack(depth=0)

    def test_storage_accounting(self):
        assert ReturnAddressStack(depth=32).storage_bits() == 32 * 32

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                    max_size=64))
    def test_matches_list_model_when_within_depth(self, pushes):
        """Until capacity is exceeded, the RAS behaves as a plain stack."""
        depth = 64
        ras = ReturnAddressStack(depth=depth)
        model = []
        for value in pushes:
            ras.push(value)
            model.append(value)
        while model:
            assert ras.pop() == model.pop()
        assert ras.pop() is None

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=999)),
            max_size=100,
        )
    )
    def test_never_exceeds_capacity(self, ops):
        ras = ReturnAddressStack(depth=8)
        for is_push, value in ops:
            if is_push:
                ras.push(value)
            else:
                ras.pop()
            assert 0 <= len(ras) <= 8


class TestTaskTargetBuffer:
    def test_compulsory_miss_then_hit(self):
        ttb = TaskTargetBuffer(index_bits=8)
        assert ttb.predict(0x100) is None
        ttb.update(0x100, 0x2000)
        assert ttb.predict(0x100) == 0x2000

    def test_hysteresis_resists_single_change(self):
        ttb = TaskTargetBuffer(index_bits=8)
        for _ in range(4):
            ttb.update(0x100, 0x2000)
        ttb.update(0x100, 0x3000)
        assert ttb.predict(0x100) == 0x2000  # counter not drained yet

    def test_replacement_after_drain(self):
        ttb = TaskTargetBuffer(index_bits=8)
        ttb.update(0x100, 0x2000)  # counter 1
        ttb.update(0x100, 0x3000)  # counter 0
        ttb.update(0x100, 0x3000)  # replace
        assert ttb.predict(0x100) == 0x3000

    def test_aliasing_in_small_table(self):
        ttb = TaskTargetBuffer(index_bits=2)
        ttb.update(0b000_00 << 2, 0xAAAA)
        # 0b100_00 aliases to the same 2-bit slot.
        assert ttb.predict(0b100_00 << 2 | 0) is not None or True
        assert ttb.entries_touched() <= 4

    def test_storage_accounting(self):
        ttb = TaskTargetBuffer(index_bits=11)
        assert ttb.storage_bits() == (1 << 11) * 34

    def test_thrashing_site_mispredicts(self):
        """A task alternating between two targets defeats the plain TTB —
        the pathology that motivates the CTTB (§5.3)."""
        ttb = TaskTargetBuffer(index_bits=8)
        targets = [0x2000, 0x3000] * 20
        misses = 0
        for target in targets:
            if ttb.predict(0x100) != target:
                misses += 1
            ttb.update(0x100, target)
        assert misses > len(targets) // 2


class TestCorrelatedTaskTargetBuffer:
    def test_distinguishes_targets_by_path(self):
        cttb = CorrelatedTaskTargetBuffer(DolcSpec.parse("2-3-3-5(1)"))
        # Path A -> target 0x2000; path B -> target 0x3000, same task.
        for _ in range(6):
            for addr in (0x104, 0x208):
                cttb.observe_step(addr)
            cttb.update(0x40C, 0x2000)
            cttb.observe_step(0x40C)
            for addr in (0x104, 0x310):
                cttb.observe_step(addr)
            cttb.update(0x40C, 0x3000)
            cttb.observe_step(0x40C)
        for addr in (0x104, 0x208):
            cttb.observe_step(addr)
        assert cttb.predict(0x40C) == 0x2000
        cttb.observe_step(0x40C)
        for addr in (0x104, 0x310):
            cttb.observe_step(addr)
        assert cttb.predict(0x40C) == 0x3000

    def test_storage_accounting(self):
        cttb = CorrelatedTaskTargetBuffer(DolcSpec.parse("5-5-6-7(3)"))
        assert cttb.storage_bits() == (1 << 11) * 34


class TestIdealCorrelatedTargetBuffer:
    def test_no_aliasing_between_paths(self):
        ideal = IdealCorrelatedTargetBuffer(depth=2)
        ideal.observe_step(0x100)
        ideal.observe_step(0x200)
        ideal.update(0x400, 0x1111)
        ideal.observe_step(0x400)
        ideal.observe_step(0x100)
        ideal.observe_step(0x300)
        # Different path: no entry yet, even though the task matches.
        assert ideal.predict(0x400) is None

    def test_depth_zero_keys_by_task_only(self):
        ideal = IdealCorrelatedTargetBuffer(depth=0)
        ideal.update(0x400, 0x1111)
        ideal.observe_step(0x999)
        assert ideal.predict(0x400) == 0x1111

    def test_entries_touched_counts_paths(self):
        ideal = IdealCorrelatedTargetBuffer(depth=1)
        ideal.observe_step(0x100)
        ideal.update(0x400, 1 * 4)
        ideal.observe_step(0x400)
        ideal.observe_step(0x200)
        ideal.update(0x400, 2 * 4)
        assert ideal.entries_touched() == 2

    def test_negative_depth_rejected(self):
        with pytest.raises(PredictorConfigError):
            IdealCorrelatedTargetBuffer(depth=-1)
