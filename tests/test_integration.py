"""End-to-end integration tests across the whole pipeline."""

import numpy as np
import pytest

from repro.compiler import PartitionConfig, compile_program
from repro.evalx.__main__ import main as evalx_main
from repro.predictors.exit_predictors import PathExitPredictor
from repro.predictors.folding import DolcSpec
from repro.predictors.ideal import IdealPathPredictor
from repro.sim.functional import simulate_exit_prediction
from repro.synth.executor import TraceExecutor
from repro.synth.generator import SyntheticProgramGenerator
from repro.synth.profiles import PROFILES, get_profile
from repro.synth.workloads import Workload, load_workload


class TestPipelineEndToEnd:
    def test_generate_compile_execute_predict(self):
        """The full stack: profile -> CFG -> tasks -> trace -> prediction."""
        profile = get_profile("compress")
        program_cfg = SyntheticProgramGenerator(profile).generate()
        compiled = compile_program(
            program_cfg,
            name="compress",
            config=PartitionConfig(
                max_blocks_per_task=profile.max_blocks_per_task
            ),
        )
        trace = TraceExecutor(compiled, seed=profile.seed).run(5000)
        workload = Workload(
            profile=profile, compiled=compiled, trace=trace
        )
        stats = simulate_exit_prediction(
            workload, PathExitPredictor(DolcSpec.parse("4-5-6-7(2)"))
        )
        assert stats.trials == 5000
        assert 0.0 <= stats.miss_rate < 0.5

    def test_all_profiles_produce_runnable_workloads(self):
        for name in PROFILES:
            workload = load_workload(name, n_tasks=2000)
            assert len(workload.trace) == 2000
            assert workload.trace.distinct_tasks_seen() > 5


class TestDeterminism:
    """Everything downstream of a seed must be bit-identical."""

    def test_trace_reproducible_after_cache_clear(self):
        from repro.synth import workloads

        first = load_workload("compress", n_tasks=3000).trace
        workloads.clear_caches()
        second = load_workload("compress", n_tasks=3000).trace
        np.testing.assert_array_equal(first.task_addr, second.task_addr)
        np.testing.assert_array_equal(first.next_addr, second.next_addr)

    def test_prediction_stats_reproducible(self, compress_workload):
        def run():
            return simulate_exit_prediction(
                compress_workload, IdealPathPredictor(3)
            )

        a, b = run(), run()
        assert a.misses == b.misses
        assert a.states_touched == b.states_touched

    def test_trace_prefix_property(self):
        """A longer run begins with exactly the shorter run's records."""
        short = load_workload("compress", n_tasks=1000).trace
        long = load_workload("compress", n_tasks=2000).trace
        np.testing.assert_array_equal(
            short.task_addr, long.task_addr[:1000]
        )


class TestDiskCache:
    def test_round_trip_through_cache_dir(self, tmp_path, monkeypatch):
        from repro.synth import workloads

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        workloads.clear_caches()
        first = load_workload("compress", n_tasks=1200).trace
        cached_files = list((tmp_path / "cache").glob("*.npz"))
        assert len(cached_files) == 1
        workloads.clear_caches()
        second = load_workload("compress", n_tasks=1200).trace
        np.testing.assert_array_equal(first.task_addr, second.task_addr)
        workloads.clear_caches()

    def test_cache_off(self, tmp_path, monkeypatch):
        from repro.synth import workloads

        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        workloads.clear_caches()
        load_workload("compress", n_tasks=800)
        workloads.clear_caches()


class TestCommandLine:
    def test_single_experiment(self, capsys):
        assert evalx_main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "gcc" in out

    def test_tasks_override(self, capsys):
        assert evalx_main(["table2", "--tasks", "1500"]) == 0
        out = capsys.readouterr().out
        assert "1500" in out

    def test_unknown_experiment_exits_nonzero(self):
        with pytest.raises(SystemExit):
            evalx_main(["figure99"])
