"""Tests for smaller features not covered elsewhere."""

import pytest

from repro.errors import (
    CFGError,
    EncodingError,
    ExperimentError,
    PartitionError,
    PredictorConfigError,
    ReproError,
    SimulationError,
    TaskFormatError,
    TraceError,
    WorkloadError,
)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for error_type in (
            EncodingError, TaskFormatError, CFGError, PartitionError,
            TraceError, PredictorConfigError, SimulationError,
            WorkloadError, ExperimentError,
        ):
            assert issubclass(error_type, ReproError)

    def test_single_catch_handles_any(self):
        with pytest.raises(ReproError):
            raise PartitionError("x")


class TestDynamicArcRecording:
    def test_executor_populates_tfg_dynamic_arcs(self):
        from repro.synth.executor import TraceExecutor
        from tests.helpers import call_program, compile_small

        compiled = compile_small(call_program())
        tfg = compiled.program.tfg
        f_ret_task = compiled.block("f.ret").task_address
        before = set(tfg.successors(f_ret_task))
        TraceExecutor(compiled, record_dynamic_arcs=True).run(40)
        after = set(tfg.successors(f_ret_task))
        # RETURN arcs are invisible statically; execution discovers them.
        assert after > before or (before == set() and after)

    def test_recording_off_by_default(self):
        from repro.synth.executor import TraceExecutor
        from tests.helpers import call_program, compile_small

        compiled = compile_small(call_program())
        tfg = compiled.program.tfg
        f_ret_task = compiled.block("f.ret").task_address
        TraceExecutor(compiled).run(40)
        assert tfg.successors(f_ret_task) == tfg.static_successors(
            f_ret_task
        )


class TestNeighbourhoodWithDynamicArcs:
    def test_discovered_successors_shown(self):
        from repro.isa.display import format_task_neighbourhood
        from repro.synth.executor import TraceExecutor
        from tests.helpers import call_program, compile_small

        compiled = compile_small(call_program())
        TraceExecutor(compiled, record_dynamic_arcs=True).run(40)
        f_ret_task = compiled.block("f.ret").task_address
        text = format_task_neighbourhood(compiled.program, f_ret_task)
        assert "known successors:" in text


class TestRngEdges:
    def test_geometric_p_one_always_one(self):
        from repro.utils.rng import DeterministicRng

        rng = DeterministicRng(3)
        assert all(rng.sample_geometric(1.0, cap=9) == 1 for _ in range(20))

    def test_geometric_p_zero_hits_cap(self):
        from repro.utils.rng import DeterministicRng

        rng = DeterministicRng(3)
        assert rng.sample_geometric(0.0, cap=5) == 5


class TestSpecExports:
    def test_top_level_api_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_predictors_api_importable(self):
        import repro.predictors as predictors

        for name in predictors.__all__:
            assert getattr(predictors, name) is not None

    def test_sim_api_importable(self):
        import repro.sim as sim

        for name in sim.__all__:
            assert getattr(sim, name) is not None
