"""Tests for the multi-way prediction automata (§5.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PredictorConfigError
from repro.predictors.automata import (
    AUTOMATON_SPECS,
    LastExit,
    LastExitHysteresis,
    VotingCounters,
    make_automaton_factory,
)
from repro.utils.rng import DeterministicRng

EXITS = st.integers(min_value=0, max_value=3)


class TestLastExit:
    def test_initial_prediction_is_zero(self):
        assert LastExit().predict() == 0

    def test_follows_last_outcome(self):
        automaton = LastExit()
        automaton.update(3)
        assert automaton.predict() == 3
        automaton.update(1)
        assert automaton.predict() == 1

    def test_bits(self):
        assert LastExit.bits_per_entry() == 2


class TestLastExitHysteresis:
    def test_single_anomaly_does_not_flip_leh2(self):
        automaton = LastExitHysteresis(2)
        for _ in range(5):
            automaton.update(2)
        automaton.update(0)
        assert automaton.predict() == 2  # survived one miss
        automaton.update(0)
        automaton.update(0)
        automaton.update(0)
        assert automaton.predict() == 0  # eventually replaced

    def test_leh1_flips_after_two_misses(self):
        automaton = LastExitHysteresis(1)
        automaton.update(1)
        automaton.update(1)
        assert automaton.predict() == 1
        automaton.update(3)  # drains confidence
        assert automaton.predict() == 1
        automaton.update(3)  # confidence zero -> replace
        assert automaton.predict() == 3

    def test_replacement_only_at_zero_confidence(self):
        automaton = LastExitHysteresis(2)
        automaton.update(1)  # exit=1? initial exit is 0, so this decrements
        # Initial state: exit 0, confidence 0 -> first update(1) replaces.
        assert automaton.predict() == 1

    def test_bits_scale_with_hysteresis(self):
        assert LastExitHysteresis(1).bits_per_entry() == 3
        assert LastExitHysteresis(2).bits_per_entry() == 4

    def test_rejects_zero_bits(self):
        with pytest.raises(PredictorConfigError):
            LastExitHysteresis(0)

    @given(st.lists(EXITS, max_size=100))
    def test_prediction_always_a_seen_exit_or_zero(self, outcomes):
        automaton = LastExitHysteresis(2)
        for outcome in outcomes:
            automaton.update(outcome)
        assert automaton.predict() in set(outcomes) | {0}


class TestVotingCounters:
    def test_majority_wins(self):
        automaton = VotingCounters(2, tie_break="mru")
        for _ in range(3):
            automaton.update(2)
        automaton.update(1)
        assert automaton.predict() == 2

    def test_counters_saturate(self):
        automaton = VotingCounters(2, tie_break="mru")
        for _ in range(10):
            automaton.update(3)
        # After saturation, two misses shouldn't immediately flip.
        automaton.update(0)
        assert automaton.predict() == 3

    def test_mru_tie_break(self):
        automaton = VotingCounters(2, tie_break="mru")
        automaton.update(1)
        automaton.update(2)  # counters: 1 and 2 both at 1... 1 decremented
        # exit1: +1 then -1 = 0; exit2: +1 -> highest is exit2 alone.
        assert automaton.predict() == 2

    def test_random_tie_break_needs_rng(self):
        with pytest.raises(PredictorConfigError):
            VotingCounters(2, tie_break="random")

    def test_random_tie_break_draws_among_tied(self):
        rng = DeterministicRng(3)
        automaton = VotingCounters(2, tie_break="random", rng=rng)
        # All counters zero: every exit is tied.
        picks = {automaton.predict() for _ in range(100)}
        assert picks == {0, 1, 2, 3}

    def test_invalid_tie_break(self):
        with pytest.raises(PredictorConfigError):
            VotingCounters(2, tie_break="sometimes")

    def test_bits_accounting(self):
        assert VotingCounters(2, tie_break="mru").bits_per_entry() == 10
        rng = DeterministicRng(0)
        assert (
            VotingCounters(3, tie_break="random", rng=rng).bits_per_entry()
            == 12
        )

    @given(st.lists(EXITS, min_size=1, max_size=60))
    def test_repeated_outcome_eventually_predicted(self, outcomes):
        automaton = VotingCounters(3, tie_break="mru")
        for outcome in outcomes:
            automaton.update(outcome)
        final = outcomes[-1]
        for _ in range(8):
            automaton.update(final)
        assert automaton.predict() == final


class TestFactory:
    def test_all_specs_construct(self):
        rng = DeterministicRng(1)
        for spec in AUTOMATON_SPECS:
            automaton = make_automaton_factory(spec, rng)()
            assert automaton.predict() in range(4)

    def test_unknown_spec_rejected(self):
        for bad in ("XYZ", "LEH-0", "LEH-x", "LEH-", "VC4-MRU"):
            with pytest.raises(PredictorConfigError):
                make_automaton_factory(bad)

    def test_generalised_hysteresis_depths_construct(self):
        # The LEH family is open-ended: any LEH-<k> with k >= 1 is a
        # valid design-space point (repro.predictors.design_space).
        for bits in (3, 4, 9):
            automaton = make_automaton_factory(f"LEH-{bits}")()
            assert automaton.bits_per_entry() == 2 + bits

    def test_factories_make_independent_instances(self):
        factory = make_automaton_factory("LEH-2")
        a, b = factory(), factory()
        a.update(3)
        assert b.predict() == 0
