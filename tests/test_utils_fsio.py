"""Durable-write helpers and the fsync-before-replace regression suite.

``repro.utils.fsio`` closes the durability gap FS002 flags: an
``os.replace`` publication whose temp was never fsynced can survive a
crash as a committed name over zero-length data. The first half tests
the helpers in isolation (byte-identity with ``Path.write_text`` /
``write_bytes`` plus a real fsync); the second half pins every
durability-critical publication site — checkpoint records, job
records, job results, queue manifests, fail markers — to the
fsync-before-rename ordering, so a refactor that drops the fsync fails
here before it fails in a power-loss postmortem.
"""

from __future__ import annotations

import json
import os
from types import SimpleNamespace

import pytest

from repro.evalx.checkpoint import CheckpointStore
from repro.evalx.parallel import Cell, CellFailure
from repro.evalx.result import ExperimentResult
from repro.evalx.service.jobs import JobSpec, JobStore
from repro.evalx.service.manifest import write_fail, write_manifest
from repro.utils.fsio import fsync_write_bytes, fsync_write_text


class _FsyncSpy:
    """Counts fsyncs and asserts no publication precedes them.

    A "publication" is either ``os.replace`` (last-writer-wins
    records) or ``os.link`` (the fail markers' first-writer-wins
    commit) — both atomically bind a committed name to the temp's
    contents, so both need the temp fsynced first.
    """

    def __init__(self, monkeypatch):
        self.synced = 0
        self.synced_at_publish: list[int] = []
        real_fsync = os.fsync
        real_replace = os.replace
        real_link = os.link

        def fsync(fd):
            self.synced += 1
            real_fsync(fd)

        def replace(src, dst):
            self.synced_at_publish.append(self.synced)
            return real_replace(src, dst)

        def link(src, dst, **kwargs):
            self.synced_at_publish.append(self.synced)
            return real_link(src, dst, **kwargs)

        monkeypatch.setattr(os, "fsync", fsync)
        monkeypatch.setattr(os, "replace", replace)
        monkeypatch.setattr(os, "link", link)

    def assert_fsync_before_every_replace(self):
        assert self.synced_at_publish, "no publication ran"
        assert all(n >= 1 for n in self.synced_at_publish), (
            "a publication ran before any fsync: "
            f"{self.synced_at_publish}"
        )


class TestHelpers:
    def test_text_bytes_identical_to_write_text(self, tmp_path):
        text = "line one\nline two\n"
        durable = tmp_path / "durable.txt"
        plain = tmp_path / "plain.txt"
        fsync_write_text(durable, text)
        plain.write_text(text, encoding="utf-8")
        assert durable.read_bytes() == plain.read_bytes()

    def test_bytes_identical_to_write_bytes(self, tmp_path):
        data = b"\x00\x01binary\xff"
        durable = tmp_path / "durable.bin"
        plain = tmp_path / "plain.bin"
        fsync_write_bytes(durable, data)
        plain.write_bytes(data)
        assert durable.read_bytes() == plain.read_bytes()

    def test_text_helper_fsyncs(self, tmp_path, monkeypatch):
        spy = _FsyncSpy(monkeypatch)
        fsync_write_text(tmp_path / "x.txt", "payload")
        assert spy.synced == 1

    def test_bytes_helper_fsyncs(self, tmp_path, monkeypatch):
        spy = _FsyncSpy(monkeypatch)
        fsync_write_bytes(tmp_path / "x.bin", b"payload")
        assert spy.synced == 1


def _cell_payload(x):
    return x + 1


class TestPublicationSitesAreDurable:
    def test_checkpoint_record_fsynced_before_replace(
        self, tmp_path, monkeypatch
    ):
        spy = _FsyncSpy(monkeypatch)
        store = CheckpointStore(tmp_path)
        assert store.save("a" * 40, "cell", "table2", {"value": 7})
        spy.assert_fsync_before_every_replace()

    def test_job_record_fsynced_before_replace(
        self, tmp_path, monkeypatch
    ):
        spy = _FsyncSpy(monkeypatch)
        store = JobStore(tmp_path)
        store.submit(JobSpec(experiment="table2"))
        spy.assert_fsync_before_every_replace()

    def test_job_result_fsynced_before_replace(
        self, tmp_path, monkeypatch
    ):
        store = JobStore(tmp_path)
        job_id = store.submit(JobSpec(experiment="table2"))
        spy = _FsyncSpy(monkeypatch)
        store.save_result(
            job_id,
            ExperimentResult(
                experiment_id="table2", title="t", text="body"
            ),
        )
        spy.assert_fsync_before_every_replace()

    def test_queue_manifest_fsynced_before_replace(
        self, tmp_path, monkeypatch
    ):
        spy = _FsyncSpy(monkeypatch)
        cell = Cell(label="c0", fn=_cell_payload, kwargs={"x": 1})
        shard = SimpleNamespace(
            index=0, cell_indices=(0,), estimated_cost=1.0
        )
        path = write_manifest(
            tmp_path,
            "job-1",
            "table2",
            [cell],
            ["f" * 40],
            [1.0],
            [shard],
        )
        assert json.loads(path.read_text())["job"] == "job-1"
        spy.assert_fsync_before_every_replace()

    def test_fail_marker_fsynced_before_replace(
        self, tmp_path, monkeypatch
    ):
        spy = _FsyncSpy(monkeypatch)
        write_fail(
            tmp_path,
            "job-1",
            "f" * 40,
            CellFailure(
                label="c0",
                kind="error",
                error="boom",
                attempts=1,
                wall_seconds=0.1,
            ),
        )
        spy.assert_fsync_before_every_replace()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
