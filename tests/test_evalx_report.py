"""Tests for report rendering and the experiment registry."""

import pytest

from repro.errors import ExperimentError
from repro.evalx.registry import EXPERIMENT_IDS, run_experiment
from repro.evalx.report import format_percent, render_series, render_table
from repro.evalx.result import ExperimentResult


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(
            ["name", "value"], [["a", 1], ["long-name", 234]]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["x"], [["1"]], title="T")
        assert text.splitlines()[0] == "T"

    def test_first_column_left_aligned(self):
        text = render_table(["benchmark", "v"], [["gcc", 1]])
        row = text.splitlines()[-1]
        assert row.startswith("gcc")


class TestRenderSeries:
    def test_percent_formatting(self):
        text = render_series(
            "depth", [0, 1], {"path": [0.1, 0.05]}
        )
        assert "10.00%" in text
        assert "5.00%" in text

    def test_raw_formatting(self):
        text = render_series(
            "depth", [0], {"states": [123.0]}, as_percent=False
        )
        assert "123.000" in text

    def test_none_rendered_as_dash(self):
        text = render_series("x", [0], {"s": [None]})
        assert "-" in text.splitlines()[-1]

    def test_format_percent(self):
        assert format_percent(0.123456) == "12.35%"
        assert format_percent(0.1, decimals=1) == "10.0%"


class TestRegistry:
    def test_known_ids(self):
        assert "table2" in EXPERIMENT_IDS
        assert "figure10" in EXPERIMENT_IDS
        assert len(EXPERIMENT_IDS) == 11

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("figure99")

    def test_result_str_includes_id(self):
        result = ExperimentResult(
            experiment_id="x", title="t", text="body"
        )
        assert "x" in str(result)
        assert "body" in str(result)
