"""Tests for the Multiscalar ISA task model (repro.isa.task, controlflow)."""

import pytest

from repro.errors import TaskFormatError
from repro.isa.controlflow import (
    ControlFlowType,
    MAX_EXITS_PER_TASK,
    is_call_type,
    is_indirect_type,
    target_known_at_compile_time,
)
from repro.isa.task import StaticTask, TaskExit, TaskHeader


def branch_exit(target=0x1000):
    return TaskExit(cf_type=ControlFlowType.BRANCH, target=target)


def call_exit(target=0x2000, ret=0x1010):
    return TaskExit(
        cf_type=ControlFlowType.CALL, target=target, return_address=ret
    )


class TestControlFlowTypeTable:
    """The classification in Table 1 of the paper."""

    def test_target_known_for_branch_and_call_only(self):
        known = {
            cf for cf in ControlFlowType if target_known_at_compile_time(cf)
        }
        assert known == {ControlFlowType.BRANCH, ControlFlowType.CALL}

    def test_call_types(self):
        calls = {cf for cf in ControlFlowType if is_call_type(cf)}
        assert calls == {
            ControlFlowType.CALL, ControlFlowType.INDIRECT_CALL,
        }

    def test_indirect_types(self):
        indirect = {cf for cf in ControlFlowType if is_indirect_type(cf)}
        assert indirect == {
            ControlFlowType.INDIRECT_BRANCH, ControlFlowType.INDIRECT_CALL,
        }

    def test_exactly_five_types(self):
        assert len(list(ControlFlowType)) == 5

    def test_max_exits_is_four(self):
        assert MAX_EXITS_PER_TASK == 4


class TestTaskExit:
    def test_branch_requires_target(self):
        with pytest.raises(TaskFormatError):
            TaskExit(cf_type=ControlFlowType.BRANCH)

    def test_return_rejects_target(self):
        with pytest.raises(TaskFormatError):
            TaskExit(cf_type=ControlFlowType.RETURN, target=0x1000)

    def test_call_requires_return_address(self):
        with pytest.raises(TaskFormatError):
            TaskExit(cf_type=ControlFlowType.CALL, target=0x2000)

    def test_indirect_call_requires_return_address(self):
        with pytest.raises(TaskFormatError):
            TaskExit(cf_type=ControlFlowType.INDIRECT_CALL)

    def test_branch_rejects_return_address(self):
        with pytest.raises(TaskFormatError):
            TaskExit(
                cf_type=ControlFlowType.BRANCH,
                target=0x1000,
                return_address=0x1004,
            )

    def test_indirect_branch_carries_nothing(self):
        task_exit = TaskExit(cf_type=ControlFlowType.INDIRECT_BRANCH)
        assert task_exit.target is None
        assert task_exit.return_address is None

    def test_address_width_enforced(self):
        with pytest.raises(TaskFormatError):
            TaskExit(cf_type=ControlFlowType.BRANCH, target=1 << 32)


class TestTaskHeader:
    def test_exit_count_limits(self):
        with pytest.raises(TaskFormatError):
            TaskHeader(exits=())
        with pytest.raises(TaskFormatError):
            TaskHeader(exits=tuple(branch_exit(0x100 * i) for i in range(5)))

    def test_four_exits_allowed(self):
        header = TaskHeader(
            exits=tuple(branch_exit(0x100 * (i + 1)) for i in range(4))
        )
        assert header.n_exits == 4

    def test_exit_types_in_order(self):
        header = TaskHeader(exits=(branch_exit(), call_exit()))
        assert header.exit_types() == (
            ControlFlowType.BRANCH, ControlFlowType.CALL,
        )

    def test_negative_create_mask_rejected(self):
        with pytest.raises(TaskFormatError):
            TaskHeader(exits=(branch_exit(),), create_mask=-1)


class TestStaticTask:
    def make(self, **kwargs):
        defaults = dict(
            address=0x1000,
            header=TaskHeader(exits=(branch_exit(), call_exit())),
        )
        defaults.update(kwargs)
        return StaticTask(**defaults)

    def test_exit_lookup(self):
        task = self.make()
        assert task.exit(0).cf_type is ControlFlowType.BRANCH
        assert task.exit(1).cf_type is ControlFlowType.CALL

    def test_exit_out_of_range(self):
        with pytest.raises(TaskFormatError):
            self.make().exit(2)

    def test_static_targets_only_compile_time_known(self):
        task = StaticTask(
            address=0x1000,
            header=TaskHeader(
                exits=(
                    branch_exit(0x2000),
                    TaskExit(cf_type=ControlFlowType.RETURN),
                )
            ),
        )
        assert task.static_targets() == (0x2000,)

    def test_instruction_count_positive(self):
        with pytest.raises(TaskFormatError):
            self.make(instruction_count=0)

    def test_address_width_enforced(self):
        with pytest.raises(TaskFormatError):
            self.make(address=1 << 33)

    def test_n_exits(self):
        assert self.make().n_exits == 2
