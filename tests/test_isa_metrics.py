"""Tests for program-level metrics."""

import pytest

from repro.isa.metrics import compute_program_metrics, format_metrics

from tests.helpers import call_program, compile_small, diamond_program


class TestProgramMetrics:
    def test_counts_consistent(self, compress_workload):
        program = compress_workload.compiled.program
        metrics = compute_program_metrics(program)
        assert metrics.task_count == program.static_task_count
        assert sum(metrics.arity_histogram.values()) == metrics.task_count
        assert sum(metrics.fanout_histogram.values()) == metrics.task_count
        assert metrics.header_bytes == program.total_header_bits() // 8

    def test_mean_exits_in_legal_range(self, compress_workload):
        metrics = compute_program_metrics(
            compress_workload.compiled.program
        )
        assert 1.0 <= metrics.mean_exits_per_task <= 4.0

    def test_static_reachability_includes_entry(self):
        compiled = compile_small(diamond_program())
        metrics = compute_program_metrics(compiled.program)
        assert metrics.statically_reachable >= 1
        assert 0.0 < metrics.static_reach_fraction <= 1.0

    def test_calls_reach_callee_and_return_point(self):
        compiled = compile_small(call_program())
        metrics = compute_program_metrics(compiled.program)
        # main + f are fully connected through call targets and return
        # addresses: everything is statically reachable.
        assert metrics.static_reach_fraction == pytest.approx(1.0)

    def test_cold_functions_statically_unreachable(self, gcc_workload):
        """Cold functions are never called, so static reach must be well
        below 100% for a benchmark with cold code."""
        metrics = compute_program_metrics(gcc_workload.compiled.program)
        assert metrics.static_reach_fraction < 0.9

    def test_exit_type_counts_match_figure4_totals(self, gcc_workload):
        from repro.synth.stats_view import compute_stats

        metrics = compute_program_metrics(gcc_workload.compiled.program)
        stats = compute_stats(gcc_workload)
        total = sum(metrics.exit_type_counts.values())
        for name, count in metrics.exit_type_counts.items():
            assert stats.static_types[name] == pytest.approx(count / total)

    def test_format_metrics_renders(self, compress_workload):
        metrics = compute_program_metrics(
            compress_workload.compiled.program
        )
        text = format_metrics(metrics)
        assert "tasks:" in text
        assert "header overhead" in text
