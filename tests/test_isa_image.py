"""Round-trip tests for the binary program image format."""

import pytest

from repro.errors import EncodingError
from repro.isa.image import load_program, save_program


class TestImageRoundTrip:
    def test_round_trip_preserves_everything(
        self, compress_workload, tmp_path
    ):
        program = compress_workload.compiled.program
        path = tmp_path / "compress.msx"
        written = save_program(program, path)
        assert written == path.stat().st_size
        loaded = load_program(path, name="compress")

        assert loaded.entry == program.entry
        assert loaded.static_task_count == program.static_task_count
        for address in program.tfg.addresses():
            original = program.task(address)
            restored = loaded.task(address)
            assert restored.header == original.header
            assert restored.instruction_count == original.instruction_count
            assert (
                restored.internal_branch_count
                == original.internal_branch_count
            )
            assert restored.use_mask == original.use_mask
            assert restored.name == original.name

    def test_loaded_tfg_validates(self, compress_workload, tmp_path):
        path = tmp_path / "p.msx"
        save_program(compress_workload.compiled.program, path)
        load_program(path).tfg.validate()

    def test_image_size_tracks_header_bits(
        self, compress_workload, tmp_path
    ):
        program = compress_workload.compiled.program
        path = tmp_path / "p.msx"
        written = save_program(program, path)
        # Headers dominate; the image must be at least as large as the
        # packed header payload.
        assert written >= program.total_header_bits() // 8


class TestImageErrors:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.msx"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(EncodingError):
            load_program(path)

    def test_truncated_file_rejected(self, compress_workload, tmp_path):
        path = tmp_path / "p.msx"
        save_program(compress_workload.compiled.program, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(EncodingError):
            load_program(path)

    def test_trailing_garbage_rejected(self, compress_workload, tmp_path):
        path = tmp_path / "p.msx"
        save_program(compress_workload.compiled.program, path)
        path.write_bytes(path.read_bytes() + b"JUNK")
        with pytest.raises(EncodingError):
            load_program(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.msx"
        path.write_bytes(b"")
        with pytest.raises(EncodingError):
            load_program(path)
